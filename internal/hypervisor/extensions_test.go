package hypervisor

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Tests for the paper's §IV-D / §V-B extensions: shared extent trees, QoS
// weights, and host-side block migration with the BTLB flush.

func TestSharedExtentTree(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/shared.img", 0, 512)
		// Two VMs map the same file (world-accessible would be needed for
		// different uids; use the owner for both).
		vm1, err := w.h.NewVM(p, "vm1", VMConfig{Backend: BackendDirect, DiskPath: "/shared.img", UID: 0})
		if err != nil {
			t.Fatal(err)
		}
		vm2, err := w.h.NewVM(p, "vm2", VMConfig{Backend: BackendDirect, DiskPath: "/shared.img", UID: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !w.h.SharesTreeWith(vm1.VFIdx, vm2.VFIdx) {
			t.Fatal("two VFs on one file did not share the extent tree")
		}
		// Data written by one VM is visible to the other: same blocks.
		msg := bytes.Repeat([]byte{0x42}, 4096)
		buf1 := vm1.Kernel.AllocBuffer(4096)
		copy(buf1.Data, msg)
		if err := vm1.Kernel.SubmitAligned(p, true, 8, buf1); err != nil {
			t.Fatal(err)
		}
		buf2 := vm2.Kernel.AllocBuffer(4096)
		if err := vm2.Kernel.SubmitAligned(p, false, 8, buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf2.Data, msg) {
			t.Fatal("shared file: vm2 did not observe vm1's write")
		}
		// Destroying one sharer keeps the tree alive for the other.
		vm1.Teardown(p)
		if err := vm2.Kernel.SubmitAligned(p, false, 8, buf2); err != nil {
			t.Fatalf("surviving sharer broken after teardown: %v", err)
		}
		vm2.Teardown(p)
		if len(w.h.Device(0).trees) != 0 {
			t.Fatalf("%d trees leaked after both sharers died", len(w.h.Device(0).trees))
		}
	})
}

func TestSharedTreeMissRebuildUpdatesAllSharers(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		// Sparse shared image: vm1's write triggers lazy allocation and a
		// tree rebuild; vm2's register must be updated too or its next walk
		// would chase freed nodes.
		f, err := w.h.HostFS.Create(p, "/ss.img", 0, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(p, 512*1024); err != nil {
			t.Fatal(err)
		}
		vm1, err := w.h.NewVM(p, "vm1", VMConfig{Backend: BackendDirect, DiskPath: "/ss.img", UID: 0})
		if err != nil {
			t.Fatal(err)
		}
		vm2, err := w.h.NewVM(p, "vm2", VMConfig{Backend: BackendDirect, DiskPath: "/ss.img", UID: 0})
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{0x77}, 8192)
		b1 := vm1.Kernel.AllocBuffer(8192)
		copy(b1.Data, payload)
		if err := vm1.Kernel.SubmitAligned(p, true, 64, b1); err != nil {
			t.Fatal(err)
		}
		if w.h.MissInterrupts == 0 {
			t.Fatal("no lazy-allocation miss")
		}
		// vm2 walks the rebuilt tree.
		b2 := vm2.Kernel.AllocBuffer(8192)
		if err := vm2.Kernel.SubmitAligned(p, false, 64, b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b2.Data, payload) {
			t.Fatal("vm2 read stale data after shared-tree rebuild")
		}
	})
}

func TestQoSWeightsSkewService(t *testing.T) {
	w := newWorld(t, 32768, nil)
	var done [2]int64
	w.eng.Go("main", func(p *sim.Proc) {
		w.boot(t, p)
		var vms [2]*VM
		for i := 0; i < 2; i++ {
			path := []string{"/qa.img", "/qb.img"}[i]
			w.mkImage(t, p, path, uint32(i+1), 8192)
			weight := 1
			if i == 0 {
				weight = 8
			}
			vm, err := w.h.NewVM(p, path, VMConfig{
				Backend: BackendDirect, DiskPath: path, UID: uint32(i + 1), IOWeight: weight,
			})
			if err != nil {
				t.Error(err)
				return
			}
			vms[i] = vm
		}
		stop := false
		for i := 0; i < 2; i++ {
			i := i
			w.eng.Go("load", func(q *sim.Proc) {
				buf := vms[i].Kernel.AllocBuffer(64 * 1024)
				for !stop {
					if err := vms[i].Kernel.SubmitAligned(q, true, int64(done[i]/1024)%4096, buf); err != nil {
						t.Error(err)
						return
					}
					done[i] += 64 * 1024
				}
			})
		}
		p.Sleep(2 * sim.Millisecond)
		done[0], done[1] = 0, 0
		p.Sleep(8 * sim.Millisecond)
		stop = true
	})
	w.eng.Run()
	w.eng.Shutdown()
	if done[0] == 0 || done[1] == 0 {
		t.Fatal("a VM made no progress")
	}
	ratio := float64(done[0]) / float64(done[1])
	if ratio < 1.5 {
		t.Fatalf("weight 8:1 achieved only %.2fx service skew", ratio)
	}
}

func TestMigrationWithBTLBFlushIsTransparent(t *testing.T) {
	w := newWorld(t, 16384, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/m.img", 3, 1024)
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/m.img", UID: 3})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 64*1024)
		rand.New(rand.NewSource(12)).Read(data)
		buf := vm.Kernel.AllocBuffer(int64(len(data)))
		copy(buf.Data, data)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		// Warm the BTLB with reads.
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		runsBefore, _, err := w.h.HostFS.Runs(p, "/m.img")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.h.MigrateVFFile(p, vm.VFIdx, true); err != nil {
			t.Fatal(err)
		}
		runsAfter, _, err := w.h.HostFS.Runs(p, "/m.img")
		if err != nil {
			t.Fatal(err)
		}
		if runsBefore[0].Physical == runsAfter[0].Physical {
			t.Fatal("migration did not move any blocks")
		}
		// The VM reads the same content from the new location.
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Data, data) {
			t.Fatal("data lost across migration")
		}
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMigrationWithoutBTLBFlushServesStaleBlocks(t *testing.T) {
	// The hazard §V-B's flush requirement exists to prevent: after blocks
	// move, a stale BTLB entry still translates to the old physical blocks.
	w := newWorld(t, 16384, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/m.img", 3, 64)
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/m.img", UID: 3})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(4096)
		copy(buf.Data, bytes.Repeat([]byte{0xAA}, 4096))
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		// Warm the BTLB.
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		runsBefore, _, _ := w.h.HostFS.Runs(p, "/m.img")
		if err := w.h.MigrateVFFile(p, vm.VFIdx, false /* no flush: the bug */); err != nil {
			t.Fatal(err)
		}
		// Scribble over the OLD physical location (now free, reused by the
		// host for something else).
		old := runsBefore[0]
		junk := bytes.Repeat([]byte{0xEE}, 4096)
		if err := w.ctl.Medium.Store().WriteBlocks(int64(old.Physical), junk); err != nil {
			t.Fatal(err)
		}
		// Without the flush, the stale BTLB entry serves the junk.
		clear(buf.Data)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if buf.Data[0] != 0xEE {
			t.Fatal("expected stale-read hazard did not occur; BTLB model broken or test stale")
		}
		// The flush repairs it.
		w.h.FlushBTLB(p)
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatal(err)
		}
		if buf.Data[0] != 0xAA {
			t.Fatal("read still stale after BTLB flush")
		}
	})
}

func TestSoftwareBackendsRejectOutOfRangeIO(t *testing.T) {
	for _, kind := range []BackendKind{BackendVirtio, BackendEmulation} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			w := newWorld(t, 4096, nil)
			w.run(t, func(p *sim.Proc) {
				w.boot(t, p)
				w.mkImage(t, p, "/small.img", 1, 64)
				vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: kind, DiskPath: "/small.img", UID: 1})
				if err != nil {
					t.Fatal(err)
				}
				buf := vm.Kernel.AllocBuffer(4096)
				// 64-block disk: reading block 100 must fail cleanly.
				if err := vm.Kernel.SubmitAligned(p, false, 100, buf); err == nil {
					t.Error("out-of-range read succeeded")
				}
				// The device still works afterwards.
				if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
					t.Errorf("backend wedged after error: %v", err)
				}
			})
		})
	}
}

func TestVirtioImageShorterThanDiskReadsZeros(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		// Sparse image: size 256 blocks, nothing allocated.
		f, err := w.h.HostFS.Create(p, "/sparse.img", 1, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(p, 256*1024); err != nil {
			t.Fatal(err)
		}
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendVirtio, DiskPath: "/sparse.img", UID: 1})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(8192)
		buf.Data[0] = 0xFF
		if err := vm.Kernel.SubmitAligned(p, false, 100, buf); err != nil {
			t.Fatal(err)
		}
		for i, b := range buf.Data {
			if b != 0 {
				t.Fatalf("sparse virtio read byte %d = %#x", i, b)
			}
		}
	})
}

func TestMissHandlerOutOfSpaceFailsWrite(t *testing.T) {
	// Exhaust the host filesystem, then make a VF write that needs
	// allocation: the hypervisor must deny it and the guest must see an
	// I/O error, not a hang (paper §IV-C's write-failure flow).
	w := newWorld(t, 2048, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		f, err := w.h.HostFS.Create(p, "/sparse.img", 1, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(p, 1<<20); err != nil {
			t.Fatal(err)
		}
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/sparse.img", UID: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Fill the volume with another file.
		hog, err := w.h.HostFS.Create(p, "/hog", 0, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		free := w.h.HostFS.FreeBlocks()
		if _, err := hog.WriteAt(p, make([]byte, free*1024), 0); err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(4096)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err == nil {
			t.Fatal("write into a full volume succeeded")
		}
		// Reads of holes still work.
		if err := vm.Kernel.SubmitAligned(p, false, 0, buf); err != nil {
			t.Fatalf("device wedged after denied allocation: %v", err)
		}
	})
}

func TestIOMMURevocationFaultsDMA(t *testing.T) {
	// With DMA remapping enforced, revoking a VF's grants makes its data
	// DMAs fault; the device reports the fault as a completion status
	// instead of corrupting memory or hanging.
	w := newWorld(t, 4096, func(p *Params) { p.UseIOMMU = true })
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		w.mkImage(t, p, "/d.img", 1, 128)
		vm, err := w.h.NewVM(p, "vm", VMConfig{Backend: BackendDirect, DiskPath: "/d.img", UID: 1})
		if err != nil {
			t.Fatal(err)
		}
		buf := vm.Kernel.AllocBuffer(4096)
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err != nil {
			t.Fatal(err)
		}
		// Pull the VF's IOMMU mappings (e.g. the VM is being torn down).
		w.fab.IOMMU().RevokeAll(w.ctl.VF(vm.VFIdx).ID())
		if err := vm.Kernel.SubmitAligned(p, true, 0, buf); err == nil {
			t.Fatal("DMA after IOMMU revocation succeeded")
		}
	})
}

// Full-stack randomized property: several VMs on mixed backends issue random
// reads and writes against their own images; every VM's view must match a
// shadow model byte-for-byte, the host filesystem must stay consistent, and
// no VM may ever observe another's data.
func TestFullStackRandomIOProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	w := newWorld(t, 32768, nil)
	const vms = 3
	const imgBlocks = 1024 // 1 MB per VM
	kinds := []BackendKind{BackendDirect, BackendVirtio, BackendEmulation}
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		type tenant struct {
			vm     *VM
			shadow []byte
			buf    guest.Buffer
		}
		var ts []*tenant
		for i := 0; i < vms; i++ {
			path := []string{"/r0.img", "/r1.img", "/r2.img"}[i]
			w.mkImage(t, p, path, uint32(i+1), imgBlocks)
			vm, err := w.h.NewVM(p, path, VMConfig{Backend: kinds[i%len(kinds)], DiskPath: path, UID: uint32(i + 1)})
			if err != nil {
				t.Fatal(err)
			}
			ts = append(ts, &tenant{
				vm:     vm,
				shadow: make([]byte, imgBlocks*1024),
				buf:    vm.Kernel.AllocBuffer(32 * 1024),
			})
		}
		for op := 0; op < 250; op++ {
			tn := ts[rng.Intn(len(ts))]
			lba := int64(rng.Intn(imgBlocks - 32))
			blocks := 1 + rng.Intn(16)
			n := blocks * 1024
			sub := guest.Buffer{Addr: tn.buf.Addr, Data: tn.buf.Data[:n]}
			if rng.Intn(2) == 0 {
				rng.Read(sub.Data)
				want := append([]byte(nil), sub.Data...)
				if err := tn.vm.Kernel.SubmitAligned(p, true, lba, sub); err != nil {
					t.Fatalf("op %d write: %v", op, err)
				}
				copy(tn.shadow[lba*1024:], want)
			} else {
				if err := tn.vm.Kernel.SubmitAligned(p, false, lba, sub); err != nil {
					t.Fatalf("op %d read: %v", op, err)
				}
				if !bytes.Equal(sub.Data, tn.shadow[lba*1024:lba*1024+int64(n)]) {
					t.Fatalf("op %d: VM %s view diverged from shadow", op, tn.vm.Name)
				}
			}
		}
		if err := w.h.HostFS.Check(p); err != nil {
			t.Fatal(err)
		}
		// Host-side cross-check: each image equals its shadow.
		for i, tn := range ts {
			path := []string{"/r0.img", "/r1.img", "/r2.img"}[i]
			f, err := w.h.HostFS.Open(p, path, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(tn.shadow))
			if _, err := f.ReadAt(p, got, 0); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if !bytes.Equal(got, tn.shadow) {
				t.Fatalf("host view of %s diverged from shadow", path)
			}
		}
	})
}
