package hypervisor

import (
	"nesc/internal/cas"
	"nesc/internal/guest"
	"nesc/internal/metrics"
	"nesc/internal/pcie"
)

// Hypervisor-side telemetry: derived gauges the device cannot compute alone —
// driver-observed recovery counters, background-scrub progress, and per-queue
// driver depth for every attached ring client. Everything registers
// export-time closures over existing counters; nothing here touches the hot
// path or the virtual clock.

// RegisterMetrics publishes the hypervisor's counters into reg. Safe to call
// with nil (no-op). Queue-depth gauges for ring drivers attach as VMs are
// created (registerQueueGauges); a VF reused by a later VM replaces the
// earlier VM's closures.
func (h *Hypervisor) RegisterMetrics(reg *metrics.Registry) {
	h.Metrics = reg
	if reg == nil {
		return
	}
	no := metrics.NoLabels
	counters := []struct {
		name, help string
		v          *int64
	}{
		{"nesc_hyp_miss_interrupts_total", "serviced translation-miss interrupts", &h.MissInterrupts},
		{"nesc_hyp_injections_total", "guest interrupt injections", &h.Injections},
		{"nesc_hyp_miss_faults_total", "misses failed by fault injection", &h.MissFaults},
		{"nesc_hyp_vf_resets_total", "function-level resets issued", &h.VFResets},
		{"nesc_hyp_snapshots_total", "CoW snapshots taken", &h.Snapshots},
		{"nesc_hyp_clones_total", "clones exported through new VFs", &h.Clones},
		{"nesc_hyp_cow_breaks_total", "device CoW faults serviced end to end", &h.CowBreaks},
		{"nesc_scrub_passes_total", "completed background scrub passes", &h.ScrubPasses},
		{"nesc_scrub_blocks_total", "blocks verified by the scrubber", &h.ScrubBlocks},
		{"nesc_scrub_errors_total", "scrub requests completed non-OK", &h.ScrubErrors},
		{"nesc_scrub_repairs_total", "device repairs observed during scrub passes", &h.ScrubRepairs},
		{"nesc_cas_fetch_misses_total", "translation misses raised for chunk materialization", &h.CASFetchMisses},
		{"nesc_cas_materializations_total", "forked blocks materialized into backing files", &h.CASMaterializations},
	}
	for _, ct := range counters {
		v := ct.v
		reg.GaugeFunc(ct.name, ct.help, no, func() float64 { return float64(*v) })
	}
	h.cowBreakHist = reg.Histogram("nesc_hyp_cow_break_ns", "CoW break service latency (fault read to BTLB invalidated)", no)
	reg.GaugeFunc("nesc_fs_shared_blocks", "data blocks currently CoW-shared (extra references > 0)", no,
		func() float64 {
			if h.HostFS == nil {
				return 0
			}
			return float64(h.HostFS.SharedBlocks())
		})
	reg.GaugeFunc("nesc_fs_cow_breaks_total", "filesystem-level share breaks (device faults and host writes)", no,
		func() float64 {
			if h.HostFS == nil {
				return 0
			}
			return float64(h.HostFS.CowBreaks)
		})
	reg.GaugeFunc("nesc_scrub_progress", "fraction of the current scrub pass completed", no,
		func() float64 {
			total := h.Ctl.Medium.Store().NumBlocks()
			if total == 0 {
				return 0
			}
			return float64(h.ScrubBlocks%total) / float64(total)
		})
	// Driver recovery totals, aggregated across every attached ring client.
	recovery := []struct {
		name, help string
		get        func(DriverRecoveryStats) int64
	}{
		{"nesc_driver_timeouts_total", "request attempts that hit their deadline", func(s DriverRecoveryStats) int64 { return s.Timeouts }},
		{"nesc_driver_resubmits_total", "requests reissued after timeout or abort", func(s DriverRecoveryStats) int64 { return s.Resubmits }},
		{"nesc_driver_polled_cpls_total", "completions recovered by ring polling", func(s DriverRecoveryStats) int64 { return s.PolledCompletions }},
		{"nesc_driver_stale_cpls_total", "ring completions whose id had no waiter", func(s DriverRecoveryStats) int64 { return s.StaleCompletions }},
		{"nesc_driver_seq_gaps_total", "completion sequence gaps observed", func(s DriverRecoveryStats) int64 { return s.SeqGaps }},
		{"nesc_driver_pi_mismatches_total", "driver-detected read-guard mismatches", func(s DriverRecoveryStats) int64 { return s.PIMismatches }},
		{"nesc_driver_pi_write_errors_total", "integrity-error completions the drivers observed", func(s DriverRecoveryStats) int64 { return s.PIWriteErrors }},
		{"nesc_driver_root_cause_overrides_total", "failures surfacing an earlier attempt's integrity root cause", func(s DriverRecoveryStats) int64 { return s.RootCauseOverrides }},
		{"nesc_driver_doorbells_skipped_total", "MMIO doorbells elided by shadow batching", func(s DriverRecoveryStats) int64 { return s.DoorbellsSkipped }},
		{"nesc_driver_busy_rejects_total", "submissions the device fast-failed StatusBusy (admission control or deadline)", func(s DriverRecoveryStats) int64 { return s.BusyRejects }},
	}
	for _, rc := range recovery {
		get := rc.get
		reg.GaugeFunc(rc.name, rc.help, no, func() float64 { return float64(get(h.RecoveryStats())) })
	}
	// Fabric mirroring / gray-failure totals, aggregated across every
	// mirrored VM's client.
	fabricG := []struct {
		name, help string
		get        func(FabricStats) int64
	}{
		{"nesc_fabric_mirrored_writes_total", "writes acknowledged by every live replica", func(s FabricStats) int64 { return s.MirroredWrites }},
		{"nesc_fabric_degraded_writes_total", "writes acknowledged by a strict subset of replicas", func(s FabricStats) int64 { return s.DegradedWrites }},
		{"nesc_fabric_write_failures_total", "writes no live replica acknowledged", func(s FabricStats) int64 { return s.WriteFailures }},
		{"nesc_fabric_read_fallbacks_total", "reads retried on a peer after an integrity error", func(s FabricStats) int64 { return s.ReadFallbacks }},
		{"nesc_fabric_read_retries_total", "reads retried on a peer after other errors", func(s FabricStats) int64 { return s.ReadRetries }},
		{"nesc_fabric_suspects_total", "healthy-to-suspect replica transitions", func(s FabricStats) int64 { return s.Suspects }},
		{"nesc_fabric_failovers_total", "replicas fenced by the health state machine", func(s FabricStats) int64 { return s.Failovers }},
		{"nesc_fabric_recoveries_total", "suspect replicas recovered by success streaks", func(s FabricStats) int64 { return s.Recoveries }},
		{"nesc_fabric_revives_total", "fenced replicas revived into rebuild", func(s FabricStats) int64 { return s.Revives }},
		{"nesc_fabric_resilver_regions_total", "dirty regions copied by the resilver", func(s FabricStats) int64 { return s.ResilverRegions }},
		{"nesc_fabric_resilver_blocks_total", "blocks copied by the resilver", func(s FabricStats) int64 { return s.ResilverBlocks }},
		{"nesc_fabric_resilver_restores_total", "rebuilding replicas promoted back to healthy", func(s FabricStats) int64 { return s.ResilverRestores }},
		{"nesc_fabric_hedged_reads_total", "speculative second reads launched", func(s FabricStats) int64 { return s.HedgedReads }},
		{"nesc_fabric_hedge_wins_total", "hedges that delivered the data first", func(s FabricStats) int64 { return s.HedgeWins }},
		{"nesc_fabric_quarantines_total", "legs flagged fail-slow and pulled from read steering", func(s FabricStats) int64 { return s.Quarantines }},
		{"nesc_fabric_rejoins_total", "quarantined legs readmitted to read steering", func(s FabricStats) int64 { return s.Rejoins }},
		{"nesc_fabric_probe_reads_total", "reads steered to the worst leg to refresh its estimate", func(s FabricStats) int64 { return s.ProbeReads }},
		{"nesc_fabric_last_failover_ns", "first error to fence latency of the most recent failover", func(s FabricStats) int64 { return int64(s.LastFailoverLatency) }},
	}
	for _, fg := range fabricG {
		get := fg.get
		reg.GaugeFunc(fg.name, fg.help, no, func() float64 { return float64(get(h.FabricStatsNow())) })
	}
	// Content-addressed tier totals: store counters are fleet-global, cache
	// counters aggregate the per-device chunk caches. Everything registers
	// unconditionally — the closures are nil-safe and read zero while the
	// tier is disabled — so dashboards keep a stable family set.
	casG := []struct {
		name, help string
		get        func(cas.Stats, cas.CacheStats) float64
	}{
		{"nesc_cas_seals_total", "images content-addressed into the chunk store", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.Seals) }},
		{"nesc_cas_forks_total", "metadata-only image forks taken", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.Forks) }},
		{"nesc_cas_releases_total", "manifests released from the store", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.Releases) }},
		{"nesc_cas_dedup_hits_total", "sealed blocks deduplicated against existing chunks", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.DedupHits) }},
		{"nesc_cas_chunks_live", "unique chunks currently referenced", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.ChunksLive) }},
		{"nesc_cas_blocks_logical", "logical blocks across all live manifests", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.BlocksLogical) }},
		{"nesc_cas_remote_fetches_total", "chunk GETs issued to the remote tier", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.RemoteFetches) }},
		{"nesc_cas_remote_puts_total", "batched PUT round trips to the remote tier", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.RemotePuts) }},
		{"nesc_cas_remote_retries_total", "remote round trips retried after transient faults", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.RemoteRetries) }},
		{"nesc_cas_remote_fetch_ns", "virtual time spent in remote chunk fetches", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.RemoteFetchTime) }},
		{"nesc_cas_fetch_fails_total", "chunk fetches that exhausted the retry ladder", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.FetchFails) }},
		{"nesc_cas_hash_mismatches_total", "fetched payloads rejected by content verification", func(s cas.Stats, _ cas.CacheStats) float64 { return float64(s.HashMismatches) }},
		{"nesc_cas_cache_hits_total", "chunk-cache hits across the fleet", func(_ cas.Stats, c cas.CacheStats) float64 { return float64(c.Hits) }},
		{"nesc_cas_cache_misses_total", "chunk-cache misses across the fleet", func(_ cas.Stats, c cas.CacheStats) float64 { return float64(c.Misses) }},
		{"nesc_cas_cache_evictions_total", "chunks evicted from the per-device caches", func(_ cas.Stats, c cas.CacheStats) float64 { return float64(c.Evictions) }},
		{"nesc_cas_cache_resident", "chunks currently resident across the per-device caches", func(_ cas.Stats, c cas.CacheStats) float64 { return float64(c.Resident) }},
	}
	for _, cg := range casG {
		get := cg.get
		reg.GaugeFunc(cg.name, cg.help, no, func() float64 { return get(h.cas.Stats(), h.CASCacheStatsNow()) })
	}
}

// registerQueueGauges publishes per-queue depth/submission gauges for one
// attached ring client (PF driver or a VM's VF driver).
func (h *Hypervisor) registerQueueGauges(id pcie.FnID, mq *guest.MultiQueue) {
	if h.Metrics == nil || mq == nil {
		return
	}
	fnIdx := h.fnIndexOf(id)
	if fnIdx < 0 {
		return
	}
	for q, qp := range mq.Queues() {
		qp := qp
		l := metrics.Labels{VF: fnIdx, Q: q}
		h.Metrics.GaugeFunc("nesc_driver_queue_depth", "in-flight submissions on this driver queue", l,
			func() float64 { return float64(qp.Depth()) })
		h.Metrics.GaugeFunc("nesc_driver_queue_submitted_total", "requests submitted on this driver queue", l,
			func() float64 { return float64(qp.Submitted) })
	}
}

// fnIndexOf maps a PCIe routing ID back to the controller's function index
// (0 = PF, 1.. = VFs); -1 when the ID is not one of the controller's. Served
// from the controller's reverse map — O(1), and never materializes a VF.
func (h *Hypervisor) fnIndexOf(id pcie.FnID) int {
	if i, ok := h.Ctl.FnIndex(id); ok {
		return i
	}
	return -1
}
