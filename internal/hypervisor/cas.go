package hypervisor

import (
	"fmt"
	"io"

	"nesc/internal/cas"
	"nesc/internal/core"
	"nesc/internal/extfs"
	"nesc/internal/sim"
	"nesc/internal/slo"
)

// Content-addressed image management: sealing a host image into the cas
// tier, forking a sealed manifest onto any fleet device as a metadata-only
// copy, and materializing forked chunks on first touch through the device's
// translation-miss path (MissReasonFetch).
//
// The flow mirrors golden-image provisioning: one host seals a prepared
// image (content-addressing every block, deduplicating against everything
// already sealed), then any number of hosts fork it. A fork writes no data —
// it takes chunk references and creates a fully sparse backing file — so the
// guest boots immediately; each block's content is fetched from the cas tier
// (or the device's local chunk cache) the first time the guest touches it.

// casBinding ties one device-local backing file to its cas manifest. The
// file handle is opened at fork time with the owning tenant's identity, so
// the miss handler never re-walks the permission check on the hot path.
type casBinding struct {
	name string // manifest name in the store
	file *extfs.File
}

// EnableCAS attaches a content-addressed store to the hypervisor. The store
// is shared across the whole fleet (it models a remote object tier all hosts
// reach); each device gets its own LRU chunk cache of cacheChunks entries
// (0 = no cache: every materialization pays a remote fetch). Call before
// sealing or forking; a nil store keeps the tier disabled.
func (h *Hypervisor) EnableCAS(store *cas.Store, cacheChunks int) {
	h.cas = store
	h.casCacheChunks = cacheChunks
}

// CAS returns the attached content-addressed store (nil when disabled).
func (h *Hypervisor) CAS() *cas.Store { return h.cas }

// CASCacheStatsNow sums the per-device chunk-cache counters across the
// fleet.
func (h *Hypervisor) CASCacheStatsNow() cas.CacheStats {
	var st cas.CacheStats
	for _, d := range h.devs {
		cs := d.casCache.Stats()
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.Evictions += cs.Evictions
		st.Resident += cs.Resident
	}
	return st
}

// casCacheRef returns the device's chunk cache, creating it on first use
// (nil when the hypervisor was configured without one).
func (d *Device) casCacheRef() *cas.Cache {
	if d.casCache == nil && d.h.casCacheChunks > 0 {
		d.casCache = cas.NewCache(d.h.casCacheChunks)
	}
	return d.casCache
}

// SealImage content-addresses the host file at path into the cas tier under
// name: every block is hashed, new chunks are pushed to the remote tier in
// one batched PUT, and blocks already sealed anywhere dedup against the
// existing chunks. The image file itself is untouched and stays usable.
func (d *Device) SealImage(p *sim.Proc, path, name string, uid uint32) (*cas.Manifest, error) {
	h := d.h
	if h.cas == nil {
		return nil, cas.ErrDisabled
	}
	f, err := d.HostFS.Open(p, path, uid, extfs.PermRead)
	if err != nil {
		return nil, err
	}
	bs := d.Ctl.P.BlockSize
	nb := (f.Size() + uint64(bs) - 1) / uint64(bs)
	blocks := make([][]byte, 0, nb)
	for i := uint64(0); i < nb; i++ {
		buf := make([]byte, bs)
		if _, err := f.ReadAt(p, buf, int64(i)*int64(bs)); err != nil && err != io.EOF {
			return nil, err
		}
		blocks = append(blocks, buf)
	}
	return h.cas.Seal(p, name, blocks)
}

// ForkImage clones the sealed manifest src onto this device as a
// metadata-only image at path, owned by uid: chunk references are taken in
// the store, a fully sparse backing file is created, and the path is bound
// to the fork's manifest so VFs exported over it run fetch-backed (every
// hole materializes its chunk on first touch). No chunk payload moves.
func (d *Device) ForkImage(p *sim.Proc, src, path string, uid uint32) error {
	h := d.h
	if h.cas == nil {
		return cas.ErrDisabled
	}
	if d.casBindings[path] != nil {
		return fmt.Errorf("hypervisor: %q already carries a cas fork", path)
	}
	// Per-device fork names keep refcounts honest: releasing one host's copy
	// must never free chunks other hosts still reference.
	dst := fmt.Sprintf("dev%d:%s", d.Idx, path)
	m, err := h.cas.Fork(p, src, dst)
	if err != nil {
		return err
	}
	if err := d.MkImage(p, path, uid, uint64(m.Blocks()), true); err != nil {
		_ = h.cas.Release(p, dst)
		return err
	}
	f, err := d.HostFS.Open(p, path, uid, extfs.PermRead|extfs.PermWrite)
	if err != nil {
		_ = h.cas.Release(p, dst)
		return err
	}
	if d.casBindings == nil {
		d.casBindings = make(map[string]*casBinding)
	}
	d.casBindings[path] = &casBinding{name: dst, file: f}
	return nil
}

// ReleaseImage drops a forked image's chunk references and unbinds the
// path. The backing file keeps whatever was already materialized; holes that
// were never touched become unreadable through fetch-backed VFs (their
// misses fail), so destroy the VFs first.
func (d *Device) ReleaseImage(p *sim.Proc, path string) error {
	b := d.casBindings[path]
	if b == nil {
		return fmt.Errorf("hypervisor: %q carries no cas fork", path)
	}
	if err := d.h.cas.Release(p, b.name); err != nil {
		return err
	}
	delete(d.casBindings, path)
	return nil
}

// casManifestOf reports the manifest name bound to a device path ("" when
// the path is not a cas fork).
func (d *Device) casManifestOf(path string) string {
	if b := d.casBindings[path]; b != nil {
		return b.name
	}
	return ""
}

// materializeRange services one MissReasonFetch miss: for every missed
// block it resolves the manifest's chunk hash, serves the payload from the
// device's chunk cache or fetches it from the remote tier (paying the
// tier's cost model and fault sites), and writes it into the backing file —
// after which the block is an ordinary allocated extent. op labels the
// latency attribution rows ("read"/"write", matching the driver's vocabulary).
func (d *Device) materializeRange(p *sim.Proc, idx int, st *vfState, blk, n uint64, op string) error {
	h := d.h
	b := d.casBindings[st.path]
	if h.cas == nil || b == nil {
		return fmt.Errorf("hypervisor: VF %d path %q is not cas-backed", idx, st.path)
	}
	m := h.cas.Manifest(b.name)
	if m == nil {
		return fmt.Errorf("hypervisor: cas manifest %q released while VF %d still fetch-backed", b.name, idx)
	}
	// Materialization happens at most once per block: a block that already
	// has an extent was materialized by an earlier service (a retried
	// mid-range failure, or a concurrent handler acting on a stale
	// miss-pending snapshot) and the guest may have overwritten it since —
	// rewriting the sealed content over it would silently destroy guest
	// writes. Skipped blocks still resolve at the rewalk.
	runs, _, err := d.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	mapped := func(b uint64) bool {
		for _, r := range runs {
			if b >= r.Logical && b < r.Logical+r.Count {
				return true
			}
		}
		return false
	}
	cache := d.casCacheRef()
	bs := uint64(d.Ctl.P.BlockSize)
	for i := blk; i < blk+n; i++ {
		if i >= uint64(len(m.Hashes)) {
			// Past the manifest's content (a partial trailing chunk range):
			// plain lazy allocation, zeros.
			return d.HostFS.AllocateRange(p, st.path, i, blk+n-i)
		}
		if mapped(i) {
			continue
		}
		hash := m.Hashes[i]
		data, ok := cache.Get(hash)
		if !ok {
			start := p.Now()
			fetched, err := h.cas.Fetch(p, hash)
			if err != nil {
				return err
			}
			if h.Attrib != nil {
				// The remote round trip is fabric time from the tenant's view.
				h.Attrib.AddSegment(idx, op, slo.SegFabricWait, p.Now()-start)
			}
			cache.Put(hash, fetched)
			data = fetched
		}
		// Pin across the file write: the chunk bytes are the DMA source and
		// must not be evicted mid-materialization.
		cache.Pin(hash)
		wstart := p.Now()
		_, werr := b.file.WriteAt(p, data, int64(i*bs))
		cache.Unpin(hash)
		if werr != nil {
			return werr
		}
		if h.Attrib != nil {
			h.Attrib.AddSegment(idx, op, slo.SegMedium, p.Now()-wstart)
		}
		h.CASMaterializations++
	}
	return nil
}

// Fleet-addressed wrappers: the primary-device compatibility API plus the
// multi-host entry points the golden-image scenario uses.

// SealImage content-addresses a primary-device host file; see
// Device.SealImage.
func (h *Hypervisor) SealImage(p *sim.Proc, path, name string, uid uint32) (*cas.Manifest, error) {
	return h.devs[0].SealImage(p, path, name, uid)
}

// ForkImage forks a sealed manifest onto the primary device; see
// Device.ForkImage.
func (h *Hypervisor) ForkImage(p *sim.Proc, src, path string, uid uint32) error {
	return h.devs[0].ForkImage(p, src, path, uid)
}

// ReleaseImage releases a primary-device fork; see Device.ReleaseImage.
func (h *Hypervisor) ReleaseImage(p *sim.Proc, path string) error {
	return h.devs[0].ReleaseImage(p, path)
}

// ReleaseSealed drops a sealed manifest's own references (the golden master
// itself). Forks keep their chunks alive through their own references.
func (h *Hypervisor) ReleaseSealed(p *sim.Proc, name string) error {
	if h.cas == nil {
		return cas.ErrDisabled
	}
	return h.cas.Release(p, name)
}

// programCASFetch arms the fetch-backed bit on a freshly created VF whose
// path is bound to a cas manifest. Called from CreateVF; the register write
// happens only for bound paths, so platforms without the cas tier keep a
// bit-identical MMIO schedule.
func (d *Device) programCASFetch(p *sim.Proc, idx int, path string) {
	if d.casBindings[path] == nil {
		return
	}
	d.h.mmioW(p, d.mgmtAddr(idx)+core.MgmtFetch, 1)
}
