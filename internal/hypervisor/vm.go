package hypervisor

import (
	"fmt"

	"nesc/internal/extfs"
	"nesc/internal/fabric"
	"nesc/internal/guest"
	"nesc/internal/sim"
	"nesc/internal/virtio"
)

// BackendKind selects the storage virtualization method (paper Fig. 1).
type BackendKind int

const (
	// BackendDirect assigns a NeSC virtual function to the guest.
	BackendDirect BackendKind = iota
	// BackendVirtio uses the paravirtual virtio-blk path.
	BackendVirtio
	// BackendEmulation uses full device emulation (trapped PIO).
	BackendEmulation
)

func (k BackendKind) String() string {
	switch k {
	case BackendDirect:
		return "nesc"
	case BackendVirtio:
		return "virtio"
	case BackendEmulation:
		return "emulation"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// VMConfig describes one guest and its virtual disk.
type VMConfig struct {
	Backend BackendKind
	// DiskPath is the host-filesystem file backing the virtual disk.
	// Ignored when RawDevice is set.
	DiskPath string
	// RawDevice backs the disk with the raw physical device instead of a
	// file: identity-mapped VF for BackendDirect, the PF for the others
	// (the configuration of the paper's raw-device experiments, §VII-A).
	RawDevice bool
	// UID is the tenant identity the hypervisor enforces on DiskPath.
	UID uint32
	// Guest overrides the guest kernel cost model (zero value = defaults).
	Guest guest.Params
	// VFRingEntries / VirtioQueueSize size the respective rings (0 =
	// defaults).
	VFRingEntries   int
	VirtioQueueSize int
	// ForceTrampoline keeps trampoline copies even with an IOMMU (for the
	// prototype-overhead ablation).
	ForceTrampoline bool
	// IOWeight is the VF's QoS weight (0 = device default of 1). Only
	// meaningful for BackendDirect.
	IOWeight int
	// VFQueues is the number of queue pairs the guest driver runs (0 =
	// every queue the device exposes, core.Params.QueuesPerVF). Only
	// meaningful for BackendDirect.
	VFQueues int
	// VFQueuePolicy steers submissions across the VF's queues (default
	// guest.PolicyHash). Only meaningful for BackendDirect.
	VFQueuePolicy guest.Policy
	// Device selects which fleet device hosts the VM's VF (0 = primary).
	// Only meaningful for BackendDirect.
	Device int
}

// VM is a running guest.
type VM struct {
	Name   string
	H      *Hypervisor
	Kernel *guest.Kernel
	Kind   BackendKind
	VFIdx  int // -1 unless BackendDirect
	// Dev is the fleet device hosting the VM's VF (nil unless
	// BackendDirect); live migration retargets it.
	Dev *Device
	// DiskPath / UID record the backing file identity for snapshot and
	// migration management ("" / 0 for raw VFs).
	DiskPath string
	UID      uint32

	NescDrv *guest.NescDriver
	VioDrv  *guest.VirtioDriver
	EmulDrv *guest.EmulDriver
	VioBk   *VioBackend
	EmulBk  *EmulBackend

	// Legs and Client are set for mirrored VMs (NewMirroredVM): one VF per
	// fleet device behind a synchronous mirror client.
	Legs   []MirrorLeg
	Client *fabric.Client

	// cfg is retained so a live migration can rebuild an identical VF
	// driver on the destination device.
	cfg VMConfig
}

// NewVM builds a guest VM with the configured storage backend. The call
// performs the hypervisor-side setup (VF creation or device-model start) and
// the guest-side driver probe.
func (h *Hypervisor) NewVM(p *sim.Proc, name string, cfg VMConfig) (*VM, error) {
	if cfg.Guest == (guest.Params{}) {
		cfg.Guest = guest.DefaultParams()
	}
	vm := &VM{Name: name, H: h, Kind: cfg.Backend, VFIdx: -1, DiskPath: cfg.DiskPath, UID: cfg.UID, cfg: cfg}
	switch cfg.Backend {
	case BackendDirect:
		dev := h.devs[cfg.Device]
		var idx int
		var err error
		if cfg.RawDevice {
			idx, err = dev.CreateRawVF(p)
		} else {
			idx, err = dev.CreateVF(p, cfg.DiskPath, cfg.UID)
		}
		if err != nil {
			return nil, err
		}
		vm.VFIdx = idx
		vm.Dev = dev
		if cfg.IOWeight > 0 {
			dev.SetVFWeight(p, idx, cfg.IOWeight)
		}
		drv, err := h.newVFDriver(p, dev, idx, cfg)
		if err != nil {
			return nil, err
		}
		vm.NescDrv = drv
		// wireLeg doubles as the single-VF hookup: completions, DMA grants
		// (stand-in for mapping the guest's RAM at the IOMMU — the VF may
		// DMA anywhere in the VM's shared-in-this-model memory).
		h.wireLeg(dev, idx, drv, vm)
		vm.Kernel = guest.NewKernel(h.Eng, h.Mem, cfg.Guest, drv)

	case BackendVirtio:
		target, err := h.targetFor(p, cfg)
		if err != nil {
			return nil, err
		}
		qsz := cfg.VirtioQueueSize
		if qsz == 0 {
			qsz = 128
		}
		queueBase, err := h.Mem.Alloc(virtio.RingBytes(qsz), 16)
		if err != nil {
			return nil, err
		}
		bk := &VioBackend{h: h, target: target, kicks: sim.NewSemaphore(h.Eng, 0), aio: sim.NewSemaphore(h.Eng, 16)}
		drv, err := guest.NewVirtioDriver(h.Eng, guest.VirtioDriverConfig{
			Mem:            h.Mem,
			Transport:      bk,
			QueueBase:      queueBase,
			QueueSize:      qsz,
			CapacityBlocks: target.SizeBlocks(),
			BlockSize:      h.Ctl.P.BlockSize,
			SubmitTime:     h.P.DriverSubmitTime,
		})
		if err != nil {
			return nil, err
		}
		bk.drv = drv
		bk.vq = drv.Virtqueue()
		h.Eng.Go("virtio-backend-"+name, bk.loop)
		vm.VioDrv = drv
		vm.VioBk = bk
		vm.Kernel = guest.NewKernel(h.Eng, h.Mem, cfg.Guest, drv)

	case BackendEmulation:
		target, err := h.targetFor(p, cfg)
		if err != nil {
			return nil, err
		}
		bk := &EmulBackend{h: h, target: target}
		drv := guest.NewEmulDriver(guest.EmulDriverConfig{
			Port:           bk,
			CapacityBlocks: target.SizeBlocks(),
			BlockSize:      h.Ctl.P.BlockSize,
			SubmitTime:     h.P.DriverSubmitTime,
		})
		vm.EmulDrv = drv
		vm.EmulBk = bk
		vm.Kernel = guest.NewKernel(h.Eng, h.Mem, cfg.Guest, drv)

	default:
		return nil, fmt.Errorf("hypervisor: unknown backend %v", cfg.Backend)
	}
	return vm, nil
}

// targetFor opens the backing store for a software backend.
func (h *Hypervisor) targetFor(p *sim.Proc, cfg VMConfig) (HostTarget, error) {
	if cfg.RawDevice {
		return &rawPFTarget{h: h}, nil
	}
	f, err := h.HostFS.Open(p, cfg.DiskPath, cfg.UID, extfs.PermRead|extfs.PermWrite)
	if err != nil {
		return nil, fmt.Errorf("hypervisor: cannot open disk image: %w", err)
	}
	bs := uint64(h.Ctl.P.BlockSize)
	return &fileTarget{h: h, file: f, size: int64((f.Size() + bs - 1) / bs)}, nil
}

// Teardown releases a VM's hypervisor-side resources (its VFs, if any).
func (vm *VM) Teardown(p *sim.Proc) {
	for _, leg := range vm.Legs {
		vm.H.unwireLeg(p, leg.Dev, leg.VFIdx)
	}
	vm.Legs = nil
	vm.Client = nil
	if vm.VFIdx >= 0 {
		vm.H.unwireLeg(p, vm.Dev, vm.VFIdx)
		vm.VFIdx = -1
		vm.Dev = nil
	}
}
