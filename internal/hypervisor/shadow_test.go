package hypervisor

import (
	"bytes"
	"testing"

	"nesc/internal/core"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// Shadow doorbells end to end: a raw VF attached without a VM, a burst of
// concurrent submitters sharing one queue, and the driver eliding MMIO
// doorbells whenever the device is already fetching.

func TestShadowDoorbellBatchingEndToEnd(t *testing.T) {
	w := newWorld(t, 8192, nil)
	w.run(t, func(p *sim.Proc) {
		w.boot(t, p)
		idx, err := w.h.CreateRawVF(p)
		if err != nil {
			t.Fatal(err)
		}
		mq, err := guest.NewMultiQueue(p, w.eng, w.mem, w.fab,
			w.h.VFPageBus(idx), 1, 8, w.h.P.DriverSubmitTime)
		if err != nil {
			t.Fatal(err)
		}
		if err := mq.ArmShadow(p); err != nil {
			t.Fatal(err)
		}
		w.h.RouteVFInterrupts(idx, mq)
		qp := mq.Queue(0)
		if !qp.ShadowArmed() {
			t.Fatal("queue not shadow-armed after ArmShadow")
		}

		// Concurrent submitters on one queue: the first submission of each
		// batch rings the doorbell; overlapping ones publish their producer
		// index in the shadow block and skip the MMIO, and the device picks
		// them up when it re-reads the shadow after draining.
		const procs, ops = 4, 4
		patterns := make([][]byte, procs)
		wg := sim.NewWaitGroup(w.eng)
		for b := 0; b < procs; b++ {
			b := b
			patterns[b] = bytes.Repeat([]byte{byte(0xB0 + b)}, 1024)
			wg.Add(1)
			w.eng.Go("shadow-sub", func(q *sim.Proc) {
				defer wg.Done()
				buf := w.mem.MustAlloc(1024, 64)
				if err := w.mem.Write(buf, patterns[b]); err != nil {
					t.Error(err)
					return
				}
				for k := 0; k < ops; k++ {
					lba := uint64(b*ops + k)
					if st, err := qp.Submit(q, core.OpWrite, lba, 1, buf); err != nil || st != core.StatusOK {
						t.Errorf("submitter %d write %d: status %d err %v", b, k, st, err)
						return
					}
				}
			})
		}
		wg.WaitFor(p)
		if qp.DoorbellsSkipped == 0 {
			t.Error("concurrent burst skipped no doorbells; shadow batching never engaged")
		}
		if w.ctl.ShadowBatches == 0 {
			t.Error("device initiated no fetch batches from the shadow block")
		}
		if got := w.h.RecoveryStats().DoorbellsSkipped; got != qp.DoorbellsSkipped {
			t.Errorf("hypervisor aggregates %d skipped doorbells, driver counted %d", got, qp.DoorbellsSkipped)
		}

		// Every write landed despite the elided doorbells.
		rbuf := w.mem.MustAlloc(1024, 64)
		for b := 0; b < procs; b++ {
			lba := uint64(b * ops) // first write of each submitter
			if st, err := qp.Submit(p, core.OpRead, lba, 1, rbuf); err != nil || st != core.StatusOK {
				t.Fatalf("read back lba %d: status %d err %v", lba, st, err)
			}
			got := make([]byte, 1024)
			if err := w.mem.Read(rbuf, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, patterns[b]) {
				t.Errorf("lba %d read %#x..., want %#x...", lba, got[0], patterns[b][0])
			}
		}

		// FLR clears the device-side shadow registration; driver recovery
		// must re-arm it along with the rings.
		if err := w.h.ResetVF(p, idx); err != nil {
			t.Fatal(err)
		}
		if err := qp.Recover(p); err != nil {
			t.Fatal(err)
		}
		if !qp.ShadowArmed() {
			t.Error("recovery did not re-arm the shadow block")
		}
		if st, err := qp.Submit(p, core.OpRead, 0, 1, rbuf); err != nil || st != core.StatusOK {
			t.Fatalf("post-recovery read: status %d err %v", st, err)
		}
	})
}
