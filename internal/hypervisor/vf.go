package hypervisor

import (
	"fmt"

	"nesc/internal/core"
	"nesc/internal/extent"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// VF lifecycle and the translation-miss service path (paper §IV-C).

func (h *Hypervisor) mgmtAddr(vfIdx int) int64 {
	return h.Ctl.BARBase() + h.Ctl.MgmtPageOffset() + int64(vfIdx)*core.MgmtStride
}

// CreateVF exports the host file at path as a virtual function on behalf of
// uid: it checks the filesystem permissions, translates the file's extent
// map into a device extent tree in host memory, and programs the VF's
// management block. It returns the VF index.
//
// Exporting the same file again shares the existing extent tree across the
// VFs (paper §IV-B); the tree stays consistent for all sharers, while data
// synchronization remains the clients' responsibility.
func (h *Hypervisor) CreateVF(p *sim.Proc, path string, uid uint32) (int, error) {
	// The protection gate: the hypervisor only exports files the requesting
	// tenant may access (read+write for a block device).
	if err := h.HostFS.Access(p, path, uid, extfs.PermRead|extfs.PermWrite); err != nil {
		return 0, fmt.Errorf("hypervisor: VF creation denied: %w", err)
	}
	runs, size, err := h.HostFS.Runs(p, path)
	if err != nil {
		return 0, err
	}
	idx, err := h.freeVF()
	if err != nil {
		return 0, err
	}
	sh, ok := h.trees[path]
	if !ok {
		tree, err := extent.Build(h.Mem, runs, h.Ctl.P.TreeFanout)
		if err != nil {
			return 0, err
		}
		sh = &sharedTree{key: path, tree: tree}
		h.trees[path] = sh
	}
	sh.refs++
	bs := uint64(h.Ctl.P.BlockSize)
	sizeBlocks := (size + bs - 1) / bs
	st := h.vfs[idx]
	st.inUse = true
	st.path = path
	st.shared = sh
	st.identity = false
	h.programVF(p, idx, sh.tree.Root(), sizeBlocks)
	return idx, nil
}

// CreateRawVF exports the whole physical device through a VF with an
// identity vLBA→pLBA mapping — NeSC "managing a single disk can be viewed
// simply as a PCIe SSD" (§II); this is the direct-device-assignment
// configuration of Figure 2.
func (h *Hypervisor) CreateRawVF(p *sim.Proc) (int, error) {
	idx, err := h.freeVF()
	if err != nil {
		return 0, err
	}
	blocks := uint64(h.Ctl.Medium.Store().NumBlocks())
	tree, err := extent.Build(h.Mem, []extent.Run{{Logical: 0, Physical: 0, Count: blocks}}, h.Ctl.P.TreeFanout)
	if err != nil {
		return 0, err
	}
	key := fmt.Sprintf("\x00raw-vf-%d", idx) // cannot collide with host paths
	sh := &sharedTree{key: key, tree: tree, refs: 1}
	h.trees[key] = sh
	st := h.vfs[idx]
	st.inUse = true
	st.path = ""
	st.shared = sh
	st.identity = true
	h.programVF(p, idx, tree.Root(), blocks)
	return idx, nil
}

func (h *Hypervisor) freeVF() (int, error) {
	for i, st := range h.vfs {
		if !st.inUse {
			return i, nil
		}
	}
	return 0, fmt.Errorf("hypervisor: out of virtual functions")
}

func (h *Hypervisor) programVF(p *sim.Proc, idx int, root int64, sizeBlocks uint64) {
	mgmt := h.mgmtAddr(idx)
	h.mmioW(p, mgmt+core.MgmtTreeRoot, uint64(root))
	h.mmioW(p, mgmt+core.MgmtDeviceSize, sizeBlocks)
	if n := h.Ctl.P.QueuesPerVF; n > 1 {
		// Program the VF's active queue count. Skipped at the single-queue
		// default so the fault-free MMIO schedule is bit-identical to the
		// pre-multi-queue device.
		h.mmioW(p, mgmt+core.MgmtQueues, uint64(n))
	}
	h.mmioW(p, mgmt+core.MgmtEnable, 1)
	if err := h.Ctl.SRIOV().EnableVFs(h.enabledVFs()); err != nil {
		panic(err)
	}
}

func (h *Hypervisor) enabledVFs() int {
	n := 0
	for _, st := range h.vfs {
		if st.inUse {
			n++
		}
	}
	return n
}

// DestroyVF disables a VF and drops its extent-tree reference; the tree is
// freed when its last sharer goes away.
func (h *Hypervisor) DestroyVF(p *sim.Proc, idx int) {
	st := h.vfs[idx]
	if !st.inUse {
		return
	}
	h.mmioW(p, h.mgmtAddr(idx)+core.MgmtEnable, 0)
	st.shared.refs--
	if st.shared.refs == 0 {
		st.shared.tree.Free()
		delete(h.trees, st.shared.key)
	}
	*st = vfState{}
	if err := h.Ctl.SRIOV().EnableVFs(h.enabledVFs()); err != nil {
		panic(err)
	}
}

// VFPageBus reports the bus address of a VF's register page — what the
// hypervisor maps into the owning guest's address space.
func (h *Hypervisor) VFPageBus(idx int) int64 {
	return h.Ctl.BARBase() + h.Ctl.FunctionPageOffset(idx+1)
}

// VFTree exposes a VF's extent tree (for the pruning ablation).
func (h *Hypervisor) VFTree(idx int) *extent.Tree { return h.vfs[idx].shared.tree }

// SharesTreeWith reports whether two VFs share one extent tree.
func (h *Hypervisor) SharesTreeWith(a, b int) bool {
	return h.vfs[a].inUse && h.vfs[b].inUse && h.vfs[a].shared == h.vfs[b].shared
}

// PruneVFTrees reclaims host memory by pruning up to maxNodes nodes from
// each in-use tree (paper §IV-B "If memory becomes tight..."); shared trees
// are pruned once.
func (h *Hypervisor) PruneVFTrees(maxNodes int) int {
	total := 0
	for _, sh := range h.trees {
		n, err := sh.tree.Prune(maxNodes)
		if err != nil {
			panic(err)
		}
		total += n
	}
	return total
}

// reprogramSharers writes the (possibly new) tree root into the management
// block of every VF sharing sh. Required after any rebuild: the old nodes
// are freed, so a stale root register would walk dead memory.
func (h *Hypervisor) reprogramSharers(p *sim.Proc, sh *sharedTree) {
	for idx, st := range h.vfs {
		if st.inUse && st.shared == sh {
			h.mmioW(p, h.mgmtAddr(idx)+core.MgmtTreeRoot, uint64(sh.tree.Root()))
		}
	}
}

// serviceMisses is the NeSC miss-interrupt handler (paper Fig. 5b): for
// every VF with a latched miss it allocates backing blocks through the host
// filesystem (lazy allocation), rebuilds the device extent tree from the
// file's refreshed mapping, reprograms the tree root, and releases the
// stalled walk with RewalkTree.
func (h *Hypervisor) serviceMisses(p *sim.Proc) {
	pending := h.mmioR(p, h.Ctl.BARBase()+core.PFRegMissPending)
	for idx := 0; idx < len(h.vfs) && pending != 0; idx++ {
		if pending&(1<<uint(idx)) == 0 {
			continue
		}
		if h.missBusy[idx] {
			// This VF's miss is already mid-service: allocation runs through
			// the PF rings and takes far longer than the device's miss-resend
			// cadence, so resent MSIs routinely observe a still-pending bit.
			// Servicing it twice would double-roll the injector and write a
			// second, stale rewalk verdict onto whatever miss latches next.
			continue
		}
		h.missBusy[idx] = true
		h.serviceMiss(p, idx)
		h.missBusy[idx] = false
	}
}

// serviceMiss handles one VF's latched miss end to end and always releases
// the stalled walk with exactly one rewalk verdict. Two reasons reach here:
// MissReasonTranslate (a hole — extend the file, the lazy-allocation path)
// and MissReasonCoW (a write hit a write-protected extent — break the
// snapshot sharing for the faulting blocks). Both end with a tree rebuild
// and a retry, so the device re-walks and finds a writable mapping.
func (h *Hypervisor) serviceMiss(p *sim.Proc, idx int) {
	h.MissInterrupts++
	mgmt := h.mgmtAddr(idx)
	missAddr := h.mmioR(p, mgmt+core.MgmtMissAddr)
	sizeReason := h.mmioR(p, mgmt+core.MgmtMissSize)
	missSize := sizeReason & 0xFFFFFFFF
	reason := uint32(sizeReason >> 32)
	dec := h.inj.Decide(fault.MissHandler)
	p.Sleep(h.P.MissHandlerTime + dec.Delay)
	if dec.Fault {
		// Injected allocation failure: the hypervisor cannot extend the
		// backing file, so the stalled walk is released with a failure.
		h.MissFaults++
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	st := h.vfs[idx]
	if !st.inUse || st.identity {
		// No backing file to extend: fail the write.
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	cow := reason == core.MissReasonCoW
	start := p.Now()
	if cow {
		if err := h.HostFS.BreakRange(p, st.path, missAddr, missSize); err != nil {
			h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
			return
		}
	} else if err := h.HostFS.AllocateRange(p, st.path, missAddr, missSize); err != nil {
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	runs, _, err := h.HostFS.Runs(p, st.path)
	if err != nil {
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	// Every sharer of the tree must see the new root before the walk
	// resumes.
	h.reprogramSharers(p, st.shared)
	if cow {
		// The faulting blocks moved to a private copy: any BTLB entry still
		// caching the old (shared, protected) mapping is stale. Invalidate
		// before the retry so the re-walk's result is what gets cached.
		h.invalidateVFRange(p, idx, missAddr, missSize)
		h.CowBreaks++
		if h.cowBreakHist != nil {
			h.cowBreakHist.Observe(int64(p.Now() - start))
		}
	}
	h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkRetry)
}

// ResetVF performs a function-level reset of a VF and re-arms its ring
// client: it writes the reset register, polls until the device reports every
// in-flight chunk drained (across all of the function's queues), then
// rebuilds every queue of the driver through MultiQueue.Recover (which
// aborts parked submitters so they resubmit or surface guest.ErrReset).
// Management state — the exported file and its extent tree — survives; FLR
// recovers a wedged function, it does not deprovision it.
func (h *Hypervisor) ResetVF(p *sim.Proc, idx int) error {
	st := h.vfs[idx]
	if !st.inUse {
		return fmt.Errorf("hypervisor: VF %d not in use", idx)
	}
	page := h.VFPageBus(idx)
	h.mmioW(p, page+core.RegReset, 1)
	for h.mmioR(p, page+core.RegReset) != 0 {
		p.Sleep(5 * sim.Microsecond)
	}
	h.VFResets++
	if mq := h.qps[h.Ctl.VF(idx).ID()]; mq != nil {
		return mq.Recover(p)
	}
	return nil
}

// RegenerateVFTree rebuilds a VF's tree from the filesystem (used after
// out-of-band pruning in tests/ablations when no device walk is pending).
func (h *Hypervisor) RegenerateVFTree(p *sim.Proc, idx int) error {
	st := h.vfs[idx]
	if !st.inUse {
		return fmt.Errorf("hypervisor: VF %d not in use", idx)
	}
	runs, _, err := h.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		return err
	}
	h.reprogramSharers(p, st.shared)
	return nil
}

// MigrateVFFile relocates the physical blocks behind a VF's backing file —
// standing in for host-side block optimizations like deduplication or
// defragmentation — then rebuilds the device extent tree and, when
// flushBTLB is set, invalidates the device's translation cache. The paper
// (§V-B) requires exactly this flush: "the BTLB cache must not prevent the
// hypervisor from executing traditional storage optimizations". Passing
// flushBTLB=false exists only so tests can demonstrate the stale-mapping
// hazard the flush prevents.
func (h *Hypervisor) MigrateVFFile(p *sim.Proc, idx int, flushBTLB bool) error {
	st := h.vfs[idx]
	if !st.inUse || st.identity {
		return fmt.Errorf("hypervisor: VF %d has no backing file", idx)
	}
	if err := h.HostFS.Migrate(p, st.path); err != nil {
		return err
	}
	runs, _, err := h.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		return err
	}
	h.reprogramSharers(p, st.shared)
	if flushBTLB {
		h.FlushBTLB(p)
	}
	return nil
}

// SetVFWeight programs a VF's QoS weight: the device multiplexer serves up
// to weight requests from this VF per scheduling round (paper §IV-D's QoS
// extension). Weights are clamped to 1..255 by the device.
func (h *Hypervisor) SetVFWeight(p *sim.Proc, idx int, weight int) {
	h.mmioW(p, h.mgmtAddr(idx)+core.MgmtWeight, uint64(weight))
}

// RouteVFInterrupts delivers a VF's completion interrupts straight to the
// given ring client with no injection cost — the peer-to-peer delivery an
// accelerator directly attached to a VF would get (paper §IV-D "direct
// storage accesses from accelerators").
func (h *Hypervisor) RouteVFInterrupts(idx int, mq *guest.MultiQueue) {
	h.qps[h.Ctl.VF(idx).ID()] = mq
	h.registerQueueGauges(h.Ctl.VF(idx).ID(), mq)
}

// FlushBTLB invalidates the device's translation cache (required around
// host-side block remapping such as deduplication, §V-B).
func (h *Hypervisor) FlushBTLB(p *sim.Proc) {
	h.mmioW(p, h.Ctl.BARBase()+core.PFRegBTLBFlush, 1)
}

func (h *Hypervisor) mmioW(p *sim.Proc, addr int64, val uint64) {
	if err := h.Fab.MMIOWrite(p, addr, 8, val); err != nil {
		panic(err)
	}
}

func (h *Hypervisor) mmioR(p *sim.Proc, addr int64) uint64 {
	v, err := h.Fab.MMIORead(p, addr, 8)
	if err != nil {
		panic(err)
	}
	return v
}
