package hypervisor

import (
	"fmt"

	"nesc/internal/core"
	"nesc/internal/extent"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/sim"
)

// VF lifecycle and the translation-miss service path (paper §IV-C). All
// operations here are per-device: a fleet hypervisor runs one copy of this
// state machine for each managed controller.

func (d *Device) mgmtAddr(vfIdx int) int64 {
	return d.Ctl.BARBase() + d.Ctl.MgmtPageOffset() + int64(vfIdx)*core.MgmtStride
}

// CreateVF exports the host file at path as a virtual function on behalf of
// uid: it checks the filesystem permissions, translates the file's extent
// map into a device extent tree in host memory, and programs the VF's
// management block. It returns the VF index.
//
// Exporting the same file again shares the existing extent tree across the
// VFs (paper §IV-B); the tree stays consistent for all sharers, while data
// synchronization remains the clients' responsibility.
func (d *Device) CreateVF(p *sim.Proc, path string, uid uint32) (int, error) {
	// The protection gate: the hypervisor only exports files the requesting
	// tenant may access (read+write for a block device).
	if err := d.HostFS.Access(p, path, uid, extfs.PermRead|extfs.PermWrite); err != nil {
		return 0, fmt.Errorf("hypervisor: VF creation denied: %w", err)
	}
	runs, size, err := d.HostFS.Runs(p, path)
	if err != nil {
		return 0, err
	}
	idx, err := d.freeVF()
	if err != nil {
		return 0, err
	}
	sh, ok := d.trees[path]
	if !ok {
		tree, err := extent.Build(d.h.Mem, runs, d.Ctl.P.TreeFanout)
		if err != nil {
			return 0, err
		}
		sh = &sharedTree{key: path, tree: tree}
		d.trees[path] = sh
	}
	sh.refs++
	bs := uint64(d.Ctl.P.BlockSize)
	sizeBlocks := (size + bs - 1) / bs
	st := d.vf(idx)
	st.inUse = true
	st.path = path
	st.shared = sh
	st.identity = false
	d.programVF(p, idx, sh.tree.Root(), sizeBlocks)
	d.programCASFetch(p, idx, path)
	return idx, nil
}

// CreateRawVF exports the whole physical device through a VF with an
// identity vLBA→pLBA mapping — NeSC "managing a single disk can be viewed
// simply as a PCIe SSD" (§II); this is the direct-device-assignment
// configuration of Figure 2.
func (d *Device) CreateRawVF(p *sim.Proc) (int, error) {
	idx, err := d.freeVF()
	if err != nil {
		return 0, err
	}
	blocks := uint64(d.Ctl.Medium.Store().NumBlocks())
	tree, err := extent.Build(d.h.Mem, []extent.Run{{Logical: 0, Physical: 0, Count: blocks}}, d.Ctl.P.TreeFanout)
	if err != nil {
		return 0, err
	}
	key := fmt.Sprintf("\x00raw-vf-%d", idx) // cannot collide with host paths
	sh := &sharedTree{key: key, tree: tree, refs: 1}
	d.trees[key] = sh
	st := d.vf(idx)
	st.inUse = true
	st.path = ""
	st.shared = sh
	st.identity = true
	d.programVF(p, idx, tree.Root(), blocks)
	return idx, nil
}

func (d *Device) freeVF() (int, error) {
	// Lowest-index-first, exactly as the eager table allocated: a
	// never-touched slot (nil or beyond the lazy table's length) is free.
	for i := 0; i < d.Ctl.P.NumVFs; i++ {
		if st := d.vfAt(i); st == nil || !st.inUse {
			return i, nil
		}
	}
	return 0, fmt.Errorf("hypervisor: out of virtual functions")
}

func (d *Device) programVF(p *sim.Proc, idx int, root int64, sizeBlocks uint64) {
	mgmt := d.mgmtAddr(idx)
	d.h.mmioW(p, mgmt+core.MgmtTreeRoot, uint64(root))
	d.h.mmioW(p, mgmt+core.MgmtDeviceSize, sizeBlocks)
	if n := d.Ctl.P.QueuesPerVF; n > 1 {
		// Program the VF's active queue count. Skipped at the single-queue
		// default so the fault-free MMIO schedule is bit-identical to the
		// pre-multi-queue device.
		d.h.mmioW(p, mgmt+core.MgmtQueues, uint64(n))
	}
	d.h.mmioW(p, mgmt+core.MgmtEnable, 1)
	if err := d.Ctl.SRIOV().EnableVFs(d.enabledVFs()); err != nil {
		panic(err)
	}
}

func (d *Device) enabledVFs() int {
	n := 0
	for _, st := range d.vfs {
		if st != nil && st.inUse {
			n++
		}
	}
	return n
}

// DestroyVF disables a VF and drops its extent-tree reference; the tree is
// freed when its last sharer goes away.
func (d *Device) DestroyVF(p *sim.Proc, idx int) {
	st := d.vfAt(idx)
	if st == nil || !st.inUse {
		return
	}
	d.h.mmioW(p, d.mgmtAddr(idx)+core.MgmtEnable, 0)
	st.shared.refs--
	if st.shared.refs == 0 {
		st.shared.tree.Free()
		delete(d.trees, st.shared.key)
	}
	*st = vfState{}
	if err := d.Ctl.SRIOV().EnableVFs(d.enabledVFs()); err != nil {
		panic(err)
	}
}

// VFPageBus reports the bus address of a VF's register page — what the
// hypervisor maps into the owning guest's address space.
func (d *Device) VFPageBus(idx int) int64 {
	return d.Ctl.BARBase() + d.Ctl.FunctionPageOffset(idx+1)
}

// VFTree exposes a VF's extent tree (for the pruning ablation).
func (d *Device) VFTree(idx int) *extent.Tree { return d.vf(idx).shared.tree }

// VFInUse reports whether VF idx currently exports something.
func (d *Device) VFInUse(idx int) bool {
	st := d.vfAt(idx)
	return st != nil && st.inUse
}

// VFPath reports the host path exported through VF idx ("" for raw VFs).
func (d *Device) VFPath(idx int) string {
	if st := d.vfAt(idx); st != nil {
		return st.path
	}
	return ""
}

// SharesTreeWith reports whether two VFs share one extent tree.
func (d *Device) SharesTreeWith(a, b int) bool {
	sa, sb := d.vfAt(a), d.vfAt(b)
	return sa != nil && sb != nil && sa.inUse && sb.inUse && sa.shared == sb.shared
}

// PruneVFTrees reclaims host memory by pruning up to maxNodes nodes from
// each in-use tree (paper §IV-B "If memory becomes tight..."); shared trees
// are pruned once.
func (d *Device) PruneVFTrees(maxNodes int) int {
	total := 0
	for _, sh := range d.trees {
		n, err := sh.tree.Prune(maxNodes)
		if err != nil {
			panic(err)
		}
		total += n
	}
	return total
}

// reprogramSharers writes the (possibly new) tree root into the management
// block of every VF sharing sh. Required after any rebuild: the old nodes
// are freed, so a stale root register would walk dead memory.
func (d *Device) reprogramSharers(p *sim.Proc, sh *sharedTree) {
	for idx, st := range d.vfs {
		if st != nil && st.inUse && st.shared == sh {
			d.h.mmioW(p, d.mgmtAddr(idx)+core.MgmtTreeRoot, uint64(sh.tree.Root()))
		}
	}
}

// serviceMisses is the NeSC miss-interrupt handler (paper Fig. 5b): for
// every VF with a latched miss it allocates backing blocks through the host
// filesystem (lazy allocation), rebuilds the device extent tree from the
// file's refreshed mapping, reprograms the tree root, and releases the
// stalled walk with RewalkTree.
func (d *Device) serviceMisses(p *sim.Proc) {
	// ≤64 configured VFs fit the legacy PFRegMissPending word: one read,
	// exactly the pre-banked MMIO sequence, so small configurations stay
	// schedule-neutral. Larger fleets sweep the per-bank registers.
	if d.Ctl.P.NumVFs <= 64 {
		d.serviceMissBank(p, 0, d.Ctl.BARBase()+core.PFRegMissPending)
		return
	}
	banks := (d.Ctl.P.NumVFs + 63) / 64
	if banks > core.PFRegMissPendingBanks {
		banks = core.PFRegMissPendingBanks
	}
	for k := 0; k < banks; k++ {
		d.serviceMissBank(p, k, d.Ctl.BARBase()+core.PFRegMissPendingBank+int64(k)*8)
	}
}

// serviceMissBank reads one 64-VF miss-pending bank at register reg and
// services every latched bit in it.
func (d *Device) serviceMissBank(p *sim.Proc, bank int, reg int64) {
	pending := d.h.mmioR(p, reg)
	serviced := false
	for bit := 0; bit < 64 && pending != 0; bit++ {
		idx := bank*64 + bit
		if idx >= d.Ctl.P.NumVFs {
			break
		}
		if pending&(1<<uint(bit)) == 0 {
			continue
		}
		// Index through the field (not a cached element pointer): a
		// concurrent service proc can grow the lazy table while this one is
		// parked on the VF lock, reallocating the backing array.
		if *d.missBusyRef(idx) {
			// This VF's miss is already mid-service: allocation runs through
			// the PF rings and takes far longer than the device's miss-resend
			// cadence, so resent MSIs routinely observe a still-pending bit.
			// Servicing it twice would double-roll the injector and write a
			// second, stale rewalk verdict onto whatever miss latches next.
			continue
		}
		if serviced && d.vfFetchBacked(idx) {
			// Every service earlier in this sweep slept, so the bank snapshot
			// is stale: a concurrent handler may have serviced this bit long
			// ago. For ordinary VFs a duplicate service is an idempotent
			// re-allocation, but on a fetch-backed VF it would re-materialize
			// chunks the guest may have overwritten since — so spend one
			// register read to confirm the miss is still latched. Gating on
			// fetch-backed keeps the cas-free MMIO schedule bit-identical.
			pending = d.h.mmioR(p, reg)
			if pending&(1<<uint(bit)) == 0 {
				continue
			}
		}
		d.missBusy[idx] = true
		if d.lockVF(p, idx) {
			// A management operation (FLR, snapshot, migration) ran while we
			// waited for the VF lock. It may have aborted the latched miss —
			// an FLR clears the pending bit and fails the stalled walk — so
			// re-read the bit before writing a rewalk verdict that would land
			// on whatever miss latches next. Only a contended acquisition
			// pays this extra register read; the fault-free schedule is
			// untouched.
			if d.h.mmioR(p, reg)&(1<<uint(bit)) == 0 {
				d.unlockVF(idx)
				d.missBusy[idx] = false
				continue
			}
		}
		d.serviceMiss(p, idx)
		d.unlockVF(idx)
		d.missBusy[idx] = false
		serviced = true
	}
}

// vfFetchBacked reports whether VF idx currently exports a cas-fork image
// (holes are unmaterialized content, so duplicate miss services are
// destructive there). Timeless host-side lookup.
func (d *Device) vfFetchBacked(idx int) bool {
	st := d.vfAt(idx)
	return st != nil && st.inUse && d.casBindings[st.path] != nil
}

// serviceMiss handles one VF's latched miss end to end and always releases
// the stalled walk with exactly one rewalk verdict. Three reasons reach
// here: MissReasonTranslate (a hole — extend the file, the lazy-allocation
// path), MissReasonCoW (a write hit a write-protected extent — break the
// snapshot sharing for the faulting blocks), and MissReasonFetch (a hole on
// a fetch-backed VF — materialize the blocks' content from the cas tier).
// All end with a tree rebuild and a retry, so the device re-walks and finds
// a writable mapping.
func (d *Device) serviceMiss(p *sim.Proc, idx int) {
	h := d.h
	h.MissInterrupts++
	mgmt := d.mgmtAddr(idx)
	missAddr := h.mmioR(p, mgmt+core.MgmtMissAddr)
	sizeReason := h.mmioR(p, mgmt+core.MgmtMissSize)
	missSize := sizeReason & 0xFFFFFFFF
	reason := uint32(sizeReason >> 32)
	dec := h.inj.Decide(fault.MissHandler)
	p.Sleep(h.P.MissHandlerTime + dec.Delay)
	if dec.Fault {
		// Injected allocation failure: the hypervisor cannot extend the
		// backing file, so the stalled walk is released with a failure.
		h.MissFaults++
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	st := d.vf(idx)
	if !st.inUse || st.identity {
		// No backing file to extend: fail the write.
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	cow := reason == core.MissReasonCoW
	fetch := reason == core.MissReasonFetch
	start := p.Now()
	switch {
	case fetch:
		// A hole on a fetch-backed VF: the blocks' content lives in the cas
		// tier. The extra register read (is the stalled op a read or a write?)
		// only labels attribution rows; it happens unconditionally so the
		// fetch path's schedule is identical with attribution on or off.
		op := "read"
		if h.mmioR(p, mgmt+core.MgmtMissIsWrite) != 0 {
			op = "write"
		}
		h.CASFetchMisses++
		if err := d.materializeRange(p, idx, st, missAddr, missSize, op); err != nil {
			h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
			return
		}
	case cow:
		if err := d.HostFS.BreakRange(p, st.path, missAddr, missSize); err != nil {
			h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
			return
		}
	default:
		if err := d.HostFS.AllocateRange(p, st.path, missAddr, missSize); err != nil {
			h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
			return
		}
	}
	runs, _, err := d.HostFS.Runs(p, st.path)
	if err != nil {
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkFail)
		return
	}
	// Every sharer of the tree must see the new root before the walk
	// resumes.
	d.reprogramSharers(p, st.shared)
	if cow {
		// The faulting blocks moved to a private copy: any BTLB entry still
		// caching the old (shared, protected) mapping is stale. Invalidate
		// before the retry so the re-walk's result is what gets cached.
		d.invalidateVFRange(p, idx, missAddr, missSize)
		h.CowBreaks++
		if h.cowBreakHist != nil {
			h.cowBreakHist.Observe(int64(p.Now() - start))
		}
	}
	if fetch {
		// Materialization rewrote the range's mappings; drop any translation
		// the device cached for it before releasing the walk.
		d.invalidateVFRange(p, idx, missAddr, missSize)
	}
	h.mmioW(p, mgmt+core.MgmtRewalk, core.RewalkRetry)
}

// ResetVF performs a function-level reset of a VF and re-arms its ring
// client: it writes the reset register, polls until the device reports every
// in-flight chunk drained (across all of the function's queues), then
// rebuilds every queue of the driver through MultiQueue.Recover (which
// aborts parked submitters so they resubmit or surface guest.ErrReset).
// Management state — the exported file and its extent tree — survives; FLR
// recovers a wedged function, it does not deprovision it.
//
// The VF management lock serializes the reset write against a concurrent
// SnapshotVF, MigrateVFFile, or mid-flight miss service on the same VF, so
// a rewalk verdict or tree rebuild never interleaves with the reset-epoch
// bump. The lock is dropped before the drain poll: recovered submitters may
// take fresh translation misses while the function drains, and the miss
// handler must be able to take the lock to release those walks — holding it
// across the poll would deadlock the drain against its own miss service.
func (d *Device) ResetVF(p *sim.Proc, idx int) error {
	st := d.vfAt(idx)
	if st == nil || !st.inUse {
		return fmt.Errorf("hypervisor: VF %d not in use", idx)
	}
	h := d.h
	page := d.VFPageBus(idx)
	d.lockVF(p, idx)
	h.mmioW(p, page+core.RegReset, 1)
	d.unlockVF(idx)
	for h.mmioR(p, page+core.RegReset) != 0 {
		p.Sleep(5 * sim.Microsecond)
	}
	h.VFResets++
	if mq := h.qps[d.Ctl.VF(idx).ID()]; mq != nil {
		return mq.Recover(p)
	}
	return nil
}

// RegenerateVFTree rebuilds a VF's tree from the filesystem (used after
// out-of-band pruning in tests/ablations when no device walk is pending).
func (d *Device) RegenerateVFTree(p *sim.Proc, idx int) error {
	st := d.vfAt(idx)
	if st == nil || !st.inUse {
		return fmt.Errorf("hypervisor: VF %d not in use", idx)
	}
	d.lockVF(p, idx)
	defer d.unlockVF(idx)
	runs, _, err := d.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		return err
	}
	d.reprogramSharers(p, st.shared)
	return nil
}

// MigrateVFFile relocates the physical blocks behind a VF's backing file —
// standing in for host-side block optimizations like deduplication or
// defragmentation — then rebuilds the device extent tree and, when
// flushBTLB is set, invalidates the device's translation cache. The paper
// (§V-B) requires exactly this flush: "the BTLB cache must not prevent the
// hypervisor from executing traditional storage optimizations". Passing
// flushBTLB=false exists only so tests can demonstrate the stale-mapping
// hazard the flush prevents.
func (d *Device) MigrateVFFile(p *sim.Proc, idx int, flushBTLB bool) error {
	st := d.vfAt(idx)
	if st == nil || !st.inUse || st.identity {
		return fmt.Errorf("hypervisor: VF %d has no backing file", idx)
	}
	d.lockVF(p, idx)
	defer d.unlockVF(idx)
	if err := d.HostFS.Migrate(p, st.path); err != nil {
		return err
	}
	runs, _, err := d.HostFS.Runs(p, st.path)
	if err != nil {
		return err
	}
	if err := st.shared.tree.Rebuild(runs); err != nil {
		return err
	}
	d.reprogramSharers(p, st.shared)
	if flushBTLB {
		d.FlushBTLB(p)
	}
	return nil
}

// SetVFWeight programs a VF's QoS weight: the device multiplexer serves up
// to weight requests from this VF per scheduling round (paper §IV-D's QoS
// extension). Weights are clamped to 1..255 by the device.
func (d *Device) SetVFWeight(p *sim.Proc, idx int, weight int) {
	d.h.mmioW(p, d.mgmtAddr(idx)+core.MgmtWeight, uint64(weight))
}

// RouteVFInterrupts delivers a VF's completion interrupts straight to the
// given ring client with no injection cost — the peer-to-peer delivery an
// accelerator directly attached to a VF would get (paper §IV-D "direct
// storage accesses from accelerators").
func (d *Device) RouteVFInterrupts(idx int, mq *guest.MultiQueue) {
	d.h.qps[d.Ctl.VF(idx).ID()] = mq
	d.h.registerQueueGauges(d.Ctl.VF(idx).ID(), mq)
}

// FlushBTLB invalidates the device's translation cache (required around
// host-side block remapping such as deduplication, §V-B).
func (d *Device) FlushBTLB(p *sim.Proc) {
	d.h.mmioW(p, d.Ctl.BARBase()+core.PFRegBTLBFlush, 1)
}

func (h *Hypervisor) mmioW(p *sim.Proc, addr int64, val uint64) {
	if err := h.Fab.MMIOWrite(p, addr, 8, val); err != nil {
		panic(err)
	}
}

func (h *Hypervisor) mmioR(p *sim.Proc, addr int64) uint64 {
	v, err := h.Fab.MMIORead(p, addr, 8)
	if err != nil {
		panic(err)
	}
	return v
}
