// Package hypervisor models the host virtualization stack: the QEMU/KVM-
// style virtual machine monitor of the paper's experimental platform. It
// owns the NeSC physical function, mounts the host filesystem on it, routes
// the device's interrupts, services translation-miss interrupts (lazy
// allocation and pruned-tree regeneration), and exposes the three storage
// virtualization methods of the paper's Figure 1 to guest VMs:
//
//	full device emulation (trapped PIO), virtio (paravirtual), and
//	direct device assignment of NeSC virtual functions.
package hypervisor

import (
	"fmt"

	"nesc/internal/cas"
	"nesc/internal/core"
	"nesc/internal/extent"
	"nesc/internal/extfs"
	"nesc/internal/fault"
	"nesc/internal/guest"
	"nesc/internal/hostmem"
	"nesc/internal/metrics"
	"nesc/internal/pcie"
	"nesc/internal/sim"
	"nesc/internal/slo"
)

// Params is the host-side cost model.
type Params struct {
	// VMExitTime / VMEnterTime are the world-switch halves of a trap.
	VMExitTime  sim.Time
	VMEnterTime sim.Time
	// InjectTime is the cost of injecting an interrupt into a guest.
	InjectTime sim.Time
	// HostStackTime is the host block layer's per-request cost (the
	// hypervisor replica of the guest stack, §II).
	HostStackTime sim.Time
	// HostFSOpCost is the host filesystem's per-operation CPU cost.
	HostFSOpCost sim.Time
	// BackendWakeTime is the latency from a virtio kick to the backend
	// thread running (eventfd + iothread scheduling).
	BackendWakeTime sim.Time
	// BackendProcessTime is QEMU's per-request virtio-blk processing cost.
	BackendProcessTime sim.Time
	// EmulTrapTime is the device-emulation work per trapped access.
	EmulTrapTime sim.Time
	// EmulCmdProcessTime is the emulated disk's per-command processing.
	EmulCmdProcessTime sim.Time
	// MissHandlerTime is the hypervisor CPU cost of one NeSC miss
	// (interrupt handler, filesystem query, tree rebuild).
	MissHandlerTime sim.Time
	// MemcpyBandwidth prices host-side data copies.
	MemcpyBandwidth float64
	// UseIOMMU enables DMA remapping (a real SR-IOV platform); off, the
	// paper's prototype mode, guests bounce through trampoline buffers.
	UseIOMMU bool
	// PFMaxBlocksPerReq bounds one PF ring request.
	PFMaxBlocksPerReq int
	// PFRingEntries sizes the PF rings.
	PFRingEntries int
	// DriverSubmitTime is the per-request CPU cost of ring drivers (PF and
	// guest VF alike).
	DriverSubmitTime sim.Time
	// VFRequestTimeout / VFRetryMax configure the completion-timeout recovery
	// of every ring driver the hypervisor sets up (the PF driver and each
	// direct-assigned VF driver). Zero timeout disables recovery, preserving
	// the fault-free event schedule exactly.
	VFRequestTimeout sim.Time
	VFRetryMax       int
	// VFDeadline, when positive, programs each direct-assigned VF queue's
	// per-request deadline budget (QRegDeadline): requests the device cannot
	// finish inside it come back with the retryable StatusBusy instead of
	// queueing behind a slow component. Zero (the default) writes nothing.
	VFDeadline sim.Time
	// DisablePI turns off end-to-end protection information on every ring
	// driver the hypervisor sets up (the integrity-ablation knob). PI is
	// timeless — pure guard arithmetic — so either setting yields the same
	// virtual-time schedule on a healthy device.
	DisablePI bool
}

// DefaultParams returns costs representative of the paper's QEMU/KVM
// platform (Table I).
func DefaultParams() Params {
	return Params{
		VMExitTime:         1300 * sim.Nanosecond,
		VMEnterTime:        1200 * sim.Nanosecond,
		InjectTime:         1800 * sim.Nanosecond,
		HostStackTime:      2500 * sim.Nanosecond,
		HostFSOpCost:       1800 * sim.Nanosecond,
		BackendWakeTime:    12 * sim.Microsecond,
		BackendProcessTime: 48 * sim.Microsecond,
		EmulTrapTime:       22 * sim.Microsecond,
		EmulCmdProcessTime: 45 * sim.Microsecond,
		MissHandlerTime:    6 * sim.Microsecond,
		MemcpyBandwidth:    8e9,
		PFMaxBlocksPerReq:  1024,
		PFRingEntries:      256,
		DriverSubmitTime:   600 * sim.Nanosecond,
	}
}

// sharedTree is one extent tree exported through one or more VFs. The paper
// (§IV-B) explicitly allows "multiple VFs to share an extent tree and
// thereby files"; NeSC guarantees only the consistency of the shared tree —
// data synchronization is the clients' business.
type sharedTree struct {
	key  string // host path, or a unique synthetic key for raw VFs
	tree *extent.Tree
	refs int
}

// vfState is the hypervisor's bookkeeping for one exported VF.
type vfState struct {
	inUse  bool
	path   string
	shared *sharedTree
	// identity marks a raw passthrough VF (no backing file).
	identity bool
}

// Hypervisor is the host VMM instance. It manages a fleet of NeSC devices
// (devs); Ctl/HostFS/pfQP alias the primary device's state so the
// historical single-device API keeps working unchanged.
type Hypervisor struct {
	Eng *sim.Engine
	Mem *hostmem.Memory
	Fab *pcie.Fabric
	Ctl *core.Controller
	P   Params

	pfQP   *guest.MultiQueue
	HostFS *extfs.FS

	// devs is the managed device fleet (devs[0] is the primary); devByPF
	// routes a miss interrupt's source PF to its device.
	devs    []*Device
	devByPF map[pcie.FnID]*Device

	// qps routes completion MSIs to ring clients; vmOf marks VF-owned ones
	// for interrupt-injection cost.
	qps  map[pcie.FnID]*guest.MultiQueue
	vmOf map[pcie.FnID]*VM

	// inj optionally perturbs the miss-service path (fault.MissHandler site).
	inj *fault.Injector

	// cas is the fleet-shared content-addressed store (EnableCAS); nil keeps
	// the tier off. casCacheChunks sizes each device's local chunk cache.
	cas            *cas.Store
	casCacheChunks int
	// CASMaterializations counts chunks written into backing files by the
	// MissReasonFetch service path; CASFetchMisses counts the serviced fetch
	// misses themselves.
	CASMaterializations int64
	CASFetchMisses      int64

	// MissInterrupts counts serviced NeSC miss interrupts.
	MissInterrupts int64
	// Injections counts guest interrupt injections.
	Injections int64
	// MissFaults counts misses the hypervisor failed by fault injection.
	MissFaults int64
	// VFResets counts function-level resets issued through ResetVF.
	VFResets int64
	// Migrations counts completed live VF migrations; LastMigration keeps
	// the most recent report for Stats.
	Migrations    int64
	LastMigration MigrationReport
	// Snapshots / Clones / CowBreaks count the CoW subsystem's operations:
	// snapshots taken, clones exported through new VFs, and device CoW
	// faults serviced end to end (see snapshot.go).
	Snapshots int64
	Clones    int64
	CowBreaks int64
	// cowBreakHist, when metrics are attached, times the CoW break service
	// (fault read → sharing broken → BTLB invalidated).
	cowBreakHist *metrics.Histogram

	// Background scrubber state and lifetime counters (see scrub.go).
	scrubOn     bool
	scrubStop   bool
	ScrubPasses int64
	ScrubBlocks int64
	ScrubErrors int64
	// ScrubRepairs counts device integrity repairs observed during scrub
	// passes (a subset of the controller's IntegrityRepairs).
	ScrubRepairs int64

	// Metrics, when non-nil, receives the hypervisor-side derived gauges
	// (telemetry.go); installed by RegisterMetrics.
	Metrics *metrics.Registry

	// Board / Attrib are the host-wide anomaly scoreboard and latency
	// attributor (AttachSLO); nil when the observability layer is off.
	// Fabric clients and VF drivers built after attachment inherit them.
	Board  *slo.Scoreboard
	Attrib *slo.Attributor
}

// AttachSLO installs the observability layer's host-side hooks: the anomaly
// scoreboard receives fabric gray-failure events, and the attributor
// receives driver- and fabric-side latency credits. Call before building
// VMs; nil arguments leave the respective hook off.
func (h *Hypervisor) AttachSLO(board *slo.Scoreboard, attrib *slo.Attributor) {
	h.Board = board
	h.Attrib = attrib
}

// New wires a hypervisor to the controller and installs the MSI router.
func New(eng *sim.Engine, mem *hostmem.Memory, fab *pcie.Fabric, ctl *core.Controller, p Params) *Hypervisor {
	h := &Hypervisor{
		Eng:     eng,
		Mem:     mem,
		Fab:     fab,
		Ctl:     ctl,
		P:       p,
		devByPF: make(map[pcie.FnID]*Device),
		qps:     make(map[pcie.FnID]*guest.MultiQueue),
		vmOf:    make(map[pcie.FnID]*VM),
	}
	d0 := newDevice(h, 0, ctl)
	h.devs = []*Device{d0}
	h.devByPF[ctl.PF().ID()] = d0
	fab.SetMSIHandler(h.handleMSI)
	if p.UseIOMMU {
		fab.IOMMU().Enable()
		// The PF (device master) may reach all host memory: it DMAs extent
		// trees, PF rings, and backend buffers on the hypervisor's behalf.
		fab.IOMMU().Grant(ctl.PF().ID(), 0, mem.Size())
	}
	return h
}

// SetInjector installs a fault injector on the hypervisor's miss-service
// path. Pass nil to disable.
func (h *Hypervisor) SetInjector(inj *fault.Injector) { h.inj = inj }

// DriverRecoveryStats aggregates the recovery counters of every ring client
// the hypervisor routes interrupts to (the PF driver and all VF drivers).
type DriverRecoveryStats struct {
	Timeouts          int64
	Resubmits         int64
	PolledCompletions int64
	StaleCompletions  int64
	SeqGaps           int64
	Aborts            int64
	Resets            int64
	PIMismatches      int64
	PIWriteErrors     int64
	// RootCauseOverrides counts failed submissions that surfaced an earlier
	// attempt's integrity root cause instead of the final attempt's timeout.
	RootCauseOverrides int64
	// DoorbellsSkipped counts MMIO doorbells elided by shadow-doorbell
	// batching across every armed driver queue.
	DoorbellsSkipped int64
	// BusyRejects counts StatusBusy completions (device admission control or
	// deadline expiry) seen by every driver queue.
	BusyRejects int64
}

// RecoveryStats sums driver recovery counters across all registered queue
// pairs.
func (h *Hypervisor) RecoveryStats() DriverRecoveryStats {
	var st DriverRecoveryStats
	for _, mq := range h.qps {
		for _, qp := range mq.Queues() {
			st.Timeouts += qp.Timeouts
			st.Resubmits += qp.Resubmits
			st.PolledCompletions += qp.PolledCompletions
			st.StaleCompletions += qp.StaleCompletions
			st.SeqGaps += qp.SeqGaps
			st.Aborts += qp.Aborts
			st.Resets += qp.Resets
			st.PIMismatches += qp.PIMismatches
			st.PIWriteErrors += qp.PIWriteErrors
			st.RootCauseOverrides += qp.RootCauseOverrides
			st.DoorbellsSkipped += qp.DoorbellsSkipped
			st.BusyRejects += qp.BusyRejects
		}
	}
	return st
}

func (h *Hypervisor) handleMSI(from pcie.FnID, vec uint8) {
	if vec == core.VecMiss {
		// Miss interrupts are raised by a device's PF: route to that
		// device's handler. Device 0 keeps the historical proc name.
		d := h.devByPF[from]
		if d == nil {
			return
		}
		name := "nesc-miss-handler"
		if id := d.Ctl.DeviceID(); id != 0 {
			name = fmt.Sprintf("nesc%d-miss-handler", id)
		}
		h.Eng.Go(name, d.serviceMisses)
		return
	}
	q, ok := core.QueueOfVector(vec)
	if !ok {
		return
	}
	mq := h.qps[from]
	if mq == nil {
		return
	}
	if vm := h.vmOf[from]; vm != nil {
		// VF completions are delivered to the guest: charge injection.
		h.Injections++
		h.Eng.After(h.P.InjectTime, func() { mq.OnInterrupt(q) })
		return
	}
	mq.OnInterrupt(q)
}

// Boot programs the PF rings and formats (or mounts) the host filesystem on
// every managed device. The format/mount choice applies to the primary
// device; additional devices are always formatted fresh (they are replica
// targets, not carriers of pre-seeded images).
func (h *Hypervisor) Boot(p *sim.Proc, format bool, fsParams extfs.Params) error {
	if err := h.devs[0].bootDevice(p, format, fsParams); err != nil {
		return err
	}
	h.pfQP = h.devs[0].pfQP
	h.HostFS = h.devs[0].HostFS
	for _, d := range h.devs[1:] {
		if err := d.bootDevice(p, true, fsParams); err != nil {
			return err
		}
	}
	return nil
}

// PFDisk returns the host block-device view of the primary physical
// function.
func (h *Hypervisor) PFDisk() *PFDisk {
	return h.devs[0].Disk()
}

// PFDisk is the host's block device over one device's PF out-of-band
// channel: the "raw storage device with no file mapping capabilities" that
// serves as the paper's baseline (§VII).
type PFDisk struct {
	d      *Device
	bounce guest.Buffer
}

// BlockSize implements extfs.BlockDev.
func (pd *PFDisk) BlockSize() int { return pd.d.Ctl.P.BlockSize }

// NumBlocks implements extfs.BlockDev.
func (pd *PFDisk) NumBlocks() int64 { return pd.d.Ctl.Medium.Store().NumBlocks() }

func (pd *PFDisk) ensure(n int) guest.Buffer {
	if len(pd.bounce.Data) < n {
		addr := pd.d.h.Mem.MustAlloc(int64(n), 64)
		data, err := pd.d.h.Mem.Slice(addr, int64(n))
		if err != nil {
			panic(err)
		}
		pd.bounce = guest.Buffer{Addr: addr, Data: data}
	}
	return guest.Buffer{Addr: pd.bounce.Addr, Data: pd.bounce.Data[:n]}
}

func (pd *PFDisk) submit(ctx *sim.Proc, op uint32, lba int64, buf guest.Buffer) error {
	h := pd.d.h
	bs := pd.BlockSize()
	maxB := h.P.PFMaxBlocksPerReq
	blocks := len(buf.Data) / bs
	for done := 0; done < blocks; {
		n := blocks - done
		if n > maxB {
			n = maxB
		}
		// The host block layer retries transiently failed requests (a
		// rejected DMA transfer, a reset abort) a bounded number of times,
		// like a real kernel's; persistent errors propagate to the caller.
		var serr error
		for tries := 0; tries < 4; tries++ {
			ctx.Sleep(h.P.HostStackTime)
			st, err := pd.d.pfQP.Submit(ctx, op, uint64(lba+int64(done)), uint32(n), buf.Addr+int64(done*bs))
			if err != nil {
				return err
			}
			serr = guest.StatusError(st)
			if serr == nil || (st != core.StatusDMAFault && st != core.StatusAborted) {
				break
			}
		}
		if serr != nil {
			return serr
		}
		done += n
	}
	return nil
}

// ReadBlocks implements extfs.BlockDev.
func (pd *PFDisk) ReadBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	if ctx == nil {
		// Timeless access for setup/inspection: bypass the rings.
		return pd.d.Ctl.Medium.Store().ReadBlocks(lba, p)
	}
	buf := pd.ensure(len(p))
	if err := pd.submit(ctx, core.OpRead, lba, buf); err != nil {
		return err
	}
	copy(p, buf.Data)
	ctx.Sleep(sim.BytesTime(int64(len(p)), pd.d.h.P.MemcpyBandwidth))
	return nil
}

// WriteBlocks implements extfs.BlockDev.
func (pd *PFDisk) WriteBlocks(ctx *sim.Proc, lba int64, p []byte) error {
	if ctx == nil {
		return pd.d.Ctl.Medium.Store().WriteBlocks(lba, p)
	}
	buf := pd.ensure(len(p))
	copy(buf.Data, p)
	ctx.Sleep(sim.BytesTime(int64(len(p)), pd.d.h.P.MemcpyBandwidth))
	return pd.submit(ctx, core.OpWrite, lba, buf)
}

// Flush implements extfs.BlockDev.
func (pd *PFDisk) Flush(*sim.Proc) error { return nil }

// trap charges a full guest trap (vmexit + handler + vmenter) to the guest's
// process.
func (h *Hypervisor) trap(p *sim.Proc, handler sim.Time) {
	p.Sleep(h.P.VMExitTime + handler + h.P.VMEnterTime)
}
