package trace

import (
	"nesc/internal/sim"
)

// Request-scoped spans. Where the event Ring answers "what happened, in
// order", a Span answers "where did THIS request's time go": it carries one
// timestamped phase per pipeline stage each of its chunks passed through —
// fetch, translate (tagged BTLB hit / tree walk / hypervisor miss), transfer,
// verify — plus the request's own start/end and final status. Spans are pure
// bookkeeping: recording a phase reads the simulated clock but never advances
// it, so span collection is virtual-time-neutral by construction.

// Phase names, used both in spans and as metric name fragments.
const (
	PhaseFetch    = "fetch"     // descriptor DMA + decode
	PhaseQueue    = "queue"     // vLBA queue residence
	PhaseTransIn  = "translate" // BTLB lookup / tree walk / miss service
	PhaseDTUWait  = "dtu_wait"  // pLBA queue residence
	PhaseTransfer = "transfer"  // DMA channel service (medium + PCIe)
	PhaseVerify   = "verify"    // scrub verify service
)

// Translation outcome tags on PhaseTransIn phases.
const (
	TagHit  = "hit"  // BTLB hit
	TagWalk = "walk" // extent-tree walk satisfied in hardware
	TagMiss = "miss" // walk parked; hypervisor serviced a miss
	TagCow  = "cow"  // write trapped on a protected extent; hypervisor broke sharing
)

// Phase is one timestamped stage interval within a span. Chunk is the
// 0-based chunk index the phase belongs to, or -1 for request-level phases
// (fetch). Tag carries stage-specific detail: the translation outcome, a
// transfer's completion status, a retry count.
type Phase struct {
	Name  string
	Chunk int
	Start sim.Time
	End   sim.Time
	Tag   string
}

// Span is one request's recorded lifecycle.
type Span struct {
	Fn    int    // function index (0 = PF)
	Q     int    // queue-pair index
	Op    string // "read", "write", "verify", ...
	ID    uint32 // descriptor id
	LBA   uint64
	Count uint32 // blocks

	// ReqID is the controller-assigned causal request id threading this
	// request through metrics, scoreboard events, and flight records
	// (0 when the recording controller predates request ids).
	ReqID uint64

	Start  sim.Time // descriptor fetch began
	End    sim.Time // completion written (or dropped)
	Status uint32   // final completion status

	// Retries counts medium/integrity retry rounds attributed to the
	// request's chunks.
	Retries int

	Phases []Phase
}

// Phase appends a stage interval.
func (s *Span) Phase(name string, chunk int, start, end sim.Time, tag string) {
	if s == nil {
		return
	}
	s.Phases = append(s.Phases, Phase{Name: name, Chunk: chunk, Start: start, End: end, Tag: tag})
}

// Duration reports the span's total wall (virtual) time.
func (s *Span) Duration() sim.Time { return s.End - s.Start }

// SpanRecorder retains the last capacity completed spans in a ring. A nil
// *SpanRecorder is a valid disabled recorder: Start returns nil spans, and
// nil spans no-op everywhere, so instrumented code needs no conditionals.
type SpanRecorder struct {
	spans   []*Span
	next    int
	wrapped bool
	// Total counts all spans ever finished (including overwritten ones).
	Total int64
}

// NewSpanRecorder returns a recorder holding the last capacity spans.
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{spans: make([]*Span, capacity)}
}

// Start opens a span. Safe on a nil receiver (returns a nil span).
func (r *SpanRecorder) Start(fn, q int, op string, id uint32, lba uint64, count uint32, at sim.Time) *Span {
	if r == nil {
		return nil
	}
	return &Span{Fn: fn, Q: q, Op: op, ID: id, LBA: lba, Count: count, Start: at}
}

// Finish seals a span and retains it. Safe on nil receiver or nil span.
func (r *SpanRecorder) Finish(s *Span, at sim.Time, status uint32) {
	if r == nil || s == nil {
		return
	}
	s.End = at
	s.Status = status
	r.Total++
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many spans are currently held.
func (r *SpanRecorder) Len() int {
	if r == nil {
		return 0
	}
	if r.wrapped {
		return len(r.spans)
	}
	return r.next
}

// Spans returns the held spans in completion order (a copy of the slice;
// the spans themselves are shared and must be treated as read-only).
func (r *SpanRecorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		return append([]*Span(nil), r.spans[:r.next]...)
	}
	out := make([]*Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}
