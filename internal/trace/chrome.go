package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event exporter: renders recorded spans in the Trace Event
// Format consumed by chrome://tracing and Perfetto (ui.perfetto.dev). Each
// function becomes a "process" track (pid = function index) and each queue a
// "thread" track (tid = queue index), so a multi-tenant run shows one lane
// per VF with its queues stacked beneath. A request renders as an enclosing
// complete ("X") slice with its stage phases nested inside; Perfetto's
// flame-style stacking makes BTLB-hit vs walk vs miss translations visually
// obvious.

// chromeEvent is one Trace Event Format entry. Ts/Dur are microseconds
// (floats; the format's native unit), Ph is the event type ("X" complete,
// "M" metadata).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usFloat(ns int64) float64 { return float64(ns) / 1000 }

// WriteChromeTrace renders the recorder's spans as a Chrome trace-event JSON
// document. Safe on a nil recorder (writes an empty but loadable trace).
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ns"}
	spans := r.Spans()

	// Metadata: name each function track once, deterministically.
	seen := map[int]bool{}
	var pids []int
	for _, s := range spans {
		if !seen[s.Fn] {
			seen[s.Fn] = true
			pids = append(pids, s.Fn)
		}
	}
	sort.Ints(pids)
	for _, pid := range pids {
		name := fmt.Sprintf("vf%d", pid)
		if pid == 0 {
			name = "pf"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}

	for _, s := range spans {
		dur := usFloat(int64(s.Duration()))
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("%s lba=%d n=%d", s.Op, s.LBA, s.Count),
			Ph:   "X", Cat: "request",
			Ts: usFloat(int64(s.Start)), Dur: &dur,
			Pid: s.Fn, Tid: s.Q,
			Args: map[string]any{
				"id": s.ID, "status": s.Status, "retries": s.Retries,
			},
		})
		for _, p := range s.Phases {
			name := p.Name
			if p.Tag != "" {
				name = p.Name + "(" + p.Tag + ")"
			}
			pdur := usFloat(int64(p.End - p.Start))
			args := map[string]any{"req": s.ID}
			if p.Chunk >= 0 {
				args["chunk"] = p.Chunk
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: name, Ph: "X", Cat: p.Name,
				Ts: usFloat(int64(p.Start)), Dur: &pdur,
				Pid: s.Fn, Tid: s.Q,
				Args: args,
			})
		}
	}

	enc, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
