package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nesc/internal/sim"
)

func TestNilSpanRecorderNoOps(t *testing.T) {
	var r *SpanRecorder
	s := r.Start(1, 0, "read", 7, 100, 4, 0)
	if s != nil {
		t.Fatal("nil recorder returned a live span")
	}
	s.Phase(PhaseFetch, -1, 0, 10, "") // nil span: must not panic
	r.Finish(s, 20, 0)
	if r.Len() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder retained something")
	}
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil-recorder trace is not valid JSON: %v", err)
	}
}

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(2)
	for i := 0; i < 3; i++ {
		s := r.Start(1, 0, "write", uint32(i), uint64(i), 1, sim.Time(i))
		r.Finish(s, sim.Time(i)+10, 0)
	}
	if r.Total != 3 || r.Len() != 2 {
		t.Fatalf("Total=%d Len=%d, want 3/2", r.Total, r.Len())
	}
	spans := r.Spans()
	if spans[0].ID != 1 || spans[1].ID != 2 {
		t.Fatalf("ring kept wrong spans: %d, %d", spans[0].ID, spans[1].ID)
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := NewSpanRecorder(8)
	s := r.Start(2, 1, "read", 42, 1000, 2, 100)
	s.Phase(PhaseFetch, -1, 100, 200, "")
	s.Phase(PhaseTransIn, 0, 250, 400, TagHit)
	s.Phase(PhaseTransIn, 1, 260, 900, TagMiss)
	s.Phase(PhaseTransfer, 0, 450, 700, "")
	s.Retries = 1
	r.Finish(s, 1000, 0)

	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, b.String())
	}
	// 1 metadata + 1 request slice + 4 phase slices.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), b.String())
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args["name"] != "vf2" {
		t.Fatalf("first event is not the vf2 process metadata: %+v", doc.TraceEvents[0])
	}
	var sawHit, sawMiss bool
	for _, e := range doc.TraceEvents[1:] {
		if e.Ph != "X" {
			t.Fatalf("span event with ph=%q, want X", e.Ph)
		}
		if e.Pid != 2 || e.Tid != 1 {
			t.Fatalf("event on track pid=%d tid=%d, want 2/1", e.Pid, e.Tid)
		}
		if e.Dur == nil || *e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("bad ts/dur: %+v", e)
		}
		if strings.HasPrefix(e.Name, "translate(hit)") {
			sawHit = true
			if *e.Dur != 0.15 { // 150 ns = 0.15 us
				t.Fatalf("hit dur = %v us, want 0.15", *e.Dur)
			}
		}
		if strings.HasPrefix(e.Name, "translate(miss)") {
			sawMiss = true
		}
	}
	if !sawHit || !sawMiss {
		t.Fatalf("translation outcome tags missing (hit=%v miss=%v)", sawHit, sawMiss)
	}
}

func TestKindStringsExhaustive(t *testing.T) {
	for k := 0; k < NumKinds; k++ {
		s := Kind(k).String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("Kind(%d) has no name: %q", k, s)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Fatalf("unknown kind fallback = %q", got)
	}
	if KindVerify.String() != "verify" {
		t.Fatalf("KindVerify = %q", KindVerify.String())
	}
}
