// Package trace is a lightweight event tracer for the simulated platform: a
// fixed-capacity ring of timestamped device events (request arrival,
// translation, miss, transfer, completion) that costs nothing when disabled
// and never allocates per event once warmed. nescctl's -trace flag dumps it;
// tests use it to assert event ordering.
package trace

import (
	"fmt"
	"io"

	"nesc/internal/sim"
)

// Kind classifies an event.
type Kind uint8

// Device event kinds, in rough pipeline order.
const (
	KindFetch     Kind = iota // descriptor fetched from a request ring
	KindTranslate             // vLBA translated (BTLB hit or walk)
	KindMiss                  // translation miss latched, host interrupted
	KindRewalk                // host released a stalled walk
	KindTransfer              // chunk moved to/from the medium
	KindComplete              // request completion written
	KindFault                 // injected/observed fault (medium, DMA)
	KindDrop                  // request or completion silently lost
	KindReset                 // function-level reset
	KindVerify                // scrubber OpVerify chunk serviced by the DTU
)

// kindNames must cover every kind above; TestKindStringsExhaustive walks the
// table so an unnamed kind cannot silently render as "".
var kindNames = [...]string{
	KindFetch:     "fetch",
	KindTranslate: "translate",
	KindMiss:      "miss",
	KindRewalk:    "rewalk",
	KindTransfer:  "transfer",
	KindComplete:  "complete",
	KindFault:     "fault",
	KindDrop:      "drop",
	KindReset:     "reset",
	KindVerify:    "verify",
}

// NumKinds is the number of defined event kinds.
const NumKinds = len(kindNames)

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one traced occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	// Fn is the function index (0 = PF).
	Fn int
	// LBA is the event's block address (vLBA or pLBA depending on Kind).
	LBA uint64
	// Arg carries kind-specific detail (request ID, status, plba).
	Arg uint64
}

func (e Event) String() string {
	return fmt.Sprintf("%12v fn%-3d %-9s lba=%-8d arg=%d", e.At, e.Fn, e.Kind, e.LBA, e.Arg)
}

// Ring is a fixed-capacity event buffer. A nil *Ring is a valid no-op
// tracer, so call sites need no conditionals beyond the nil check inside
// Emit.
type Ring struct {
	events  []Event
	next    int
	wrapped bool
	// Total counts all events ever emitted (including overwritten ones).
	Total int64
}

// NewRing returns a tracer holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity)}
}

// Emit records an event. Safe on a nil receiver (no-op).
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.Total++
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.wrapped {
		return len(r.events)
	}
	return r.next
}

// Events returns the held events in chronological order (a copy).
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Dump writes the held events, one per line.
func (r *Ring) Dump(w io.Writer) error {
	return r.DumpIf(w, nil)
}

// DumpIf writes the held events that satisfy keep (nil = all), one per line.
// It is the -trace-vf filter's backend: multi-tenant dumps interleave every
// function's events, and keep lets a caller carve out one function's view.
func (r *Ring) DumpIf(w io.Writer, keep func(Event) bool) error {
	for _, e := range r.Events() {
		if keep != nil && !keep(e) {
			continue
		}
		if _, err := fmt.Fprintln(w, e.String()); err != nil {
			return err
		}
	}
	return nil
}
