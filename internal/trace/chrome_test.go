package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nesc/internal/sim"
)

// decodeTrace unmarshals a rendered trace document, failing the test on any
// JSON error — every exporter edge case must still produce a loadable trace.
func decodeTrace(t *testing.T, buf *bytes.Buffer) struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Cat  string         `json:"cat"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
} {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Cat  string         `json:"cat"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

func TestChromeTraceEmptyRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSpanRecorder(8).WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace(empty) error: %v", err)
	}
	doc := decodeTrace(t, &buf)
	if len(doc.TraceEvents) != 0 || doc.DisplayTimeUnit != "ns" {
		t.Fatalf("empty trace = %+v, want zero events and displayTimeUnit ns", doc)
	}
	// A JSON array must be present (not null): Perfetto rejects null.
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Fatalf("empty trace renders %q, want an explicit empty array", buf.String())
	}
}

func TestChromeTraceNilRecorder(t *testing.T) {
	var r *SpanRecorder
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil recorder WriteChromeTrace error: %v", err)
	}
	if doc := decodeTrace(t, &buf); len(doc.TraceEvents) != 0 {
		t.Fatalf("nil recorder trace has %d events, want 0", len(doc.TraceEvents))
	}
}

func TestChromeTraceEscapesHostileNames(t *testing.T) {
	r := NewSpanRecorder(8)
	// Op and phase tag strings chosen to break naive JSON emission: quotes,
	// backslashes, newlines, control bytes, and non-ASCII.
	hostileOp := "re\"ad\\\n\tüñí\x01"
	s := r.Start(2, 1, hostileOp, 7, 128, 8, 1000)
	s.Phase("translate", 0, 1100, 1300, "ta\"g\n")
	r.Finish(s, 2000, 0)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace error: %v", err)
	}
	doc := decodeTrace(t, &buf)
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev.Name)
	}
	wantReq := hostileOp + " lba=128 n=8"
	wantPhase := "translate(ta\"g\n)"
	var sawReq, sawPhase bool
	for _, n := range names {
		sawReq = sawReq || n == wantReq
		sawPhase = sawPhase || n == wantPhase
	}
	if !sawReq || !sawPhase {
		t.Fatalf("hostile names did not round-trip: got %q, want %q and %q", names, wantReq, wantPhase)
	}
}

func TestChromeTraceLargeRoundTrip(t *testing.T) {
	const n = 10_500
	r := NewSpanRecorder(n)
	for i := 0; i < n; i++ {
		at := sim.Time(i * 1000)
		s := r.Start(i%5, i%2, "read", uint32(i), uint64(i*8), 8, at)
		s.Phase("queue", -1, at, at+200, "")
		s.Phase("transfer", 0, at+200, at+900, "ok")
		r.Finish(s, at+1000, 0)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace error: %v", err)
	}
	doc := decodeTrace(t, &buf)
	// 5 process_name metadata events + 3 slices (request + 2 phases) per span.
	want := 5 + 3*n
	if len(doc.TraceEvents) != want {
		t.Fatalf("trace has %d events, want %d", len(doc.TraceEvents), want)
	}
	var meta, req, phase int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			meta++
		case ev.Cat == "request":
			req++
		case ev.Ph == "X":
			phase++
		default:
			t.Fatalf("unexpected event %+v", ev)
		}
	}
	if meta != 5 || req != n || phase != 2*n {
		t.Fatalf("event mix meta/req/phase = %d/%d/%d, want 5/%d/%d", meta, req, phase, n, 2*n)
	}
	// Metadata tracks render first, sorted: pid 0 is the PF lane.
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Pid != 0 ||
		doc.TraceEvents[0].Args["name"] != "pf" {
		t.Fatalf("first metadata event = %+v, want the pf track", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Args["name"] != "vf1" {
		t.Fatalf("second metadata event = %+v, want the vf1 track", doc.TraceEvents[1])
	}
}
