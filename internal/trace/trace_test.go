package trace

import (
	"strings"
	"testing"

	"nesc/internal/sim"
)

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Emit(Event{Kind: KindFetch}) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil ring holds events")
	}
}

func TestRingHoldsAndOrders(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Emit(Event{At: sim.Time(i) * sim.Microsecond, Kind: KindFetch, LBA: uint64(i)})
	}
	if r.Len() != 5 || r.Total != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total)
	}
	evs := r.Events()
	for i, e := range evs {
		if e.LBA != uint64(i) {
			t.Fatalf("event %d lba=%d", i, e.LBA)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{LBA: uint64(i)})
	}
	if r.Len() != 4 || r.Total != 10 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total)
	}
	evs := r.Events()
	want := []uint64{6, 7, 8, 9}
	for i, e := range evs {
		if e.LBA != want[i] {
			t.Fatalf("events after wrap = %v", evs)
		}
	}
}

func TestKindStringsAndDump(t *testing.T) {
	kinds := []Kind{KindFetch, KindTranslate, KindMiss, KindRewalk, KindTransfer, KindComplete, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d renders empty", k)
		}
	}
	r := NewRing(2)
	r.Emit(Event{At: sim.Microsecond, Kind: KindMiss, Fn: 3, LBA: 42})
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"miss", "fn3", "lba=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q: %s", want, out)
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := NewRing(0)
	r.Emit(Event{LBA: 1})
	if r.Len() != 1 {
		t.Fatal("clamped ring dropped event")
	}
}
