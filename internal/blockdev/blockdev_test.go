package blockdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore(1024, 16)
	if s.BlockSize() != 1024 || s.NumBlocks() != 16 {
		t.Fatalf("geometry %d/%d", s.BlockSize(), s.NumBlocks())
	}
	src := bytes.Repeat([]byte{0xab}, 2048)
	if err := s.WriteBlocks(3, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2048)
	if err := s.ReadBlocks(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("round trip mismatch")
	}
	// Neighbors untouched.
	one := make([]byte, 1024)
	if err := s.ReadBlocks(2, one); err != nil {
		t.Fatal(err)
	}
	for _, b := range one {
		if b != 0 {
			t.Fatal("write spilled into neighboring block")
		}
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore(512, 8)
	if err := s.ReadBlocks(0, make([]byte, 100)); err == nil {
		t.Fatal("non-block-multiple buffer accepted")
	}
	if err := s.ReadBlocks(7, make([]byte, 1024)); err == nil {
		t.Fatal("read past end accepted")
	}
	if err := s.WriteBlocks(-1, make([]byte, 512)); err == nil {
		t.Fatal("negative LBA accepted")
	}
	if _, err := s.Slice(6, 4); err == nil {
		t.Fatal("oversized slice accepted")
	}
	sl, err := s.Slice(2, 2)
	if err != nil || len(sl) != 1024 {
		t.Fatalf("slice = %d bytes, %v", len(sl), err)
	}
}

func TestStorePropertyRandomIO(t *testing.T) {
	f := func(ops []struct {
		LBA  uint8
		Seed uint8
	}) bool {
		s := NewStore(64, 32)
		shadow := make([]byte, 64*32)
		for _, op := range ops {
			lba := int64(op.LBA % 32)
			blk := bytes.Repeat([]byte{op.Seed}, 64)
			if err := s.WriteBlocks(lba, blk); err != nil {
				return false
			}
			copy(shadow[lba*64:], blk)
		}
		got := make([]byte, 64*32)
		if err := s.ReadBlocks(0, got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMediumTiming(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(1024, 1024)
	p := MediumParams{
		ReadLatency:   sim.Microsecond,
		WriteLatency:  sim.Microsecond,
		ReadBandwidth: 1e9, WriteBandwidth: 1e9,
	}
	m := NewMedium(eng, s, p)
	buf := make([]byte, 100*1024)
	var doneAt sim.Time
	if err := m.Read(0, buf, func(error) { doneAt = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 100KB at 1GB/s = 102.4us + 1us latency.
	want := sim.BytesTime(int64(len(buf)), 1e9) + sim.Microsecond
	if doneAt != want {
		t.Fatalf("read done at %v, want %v", doneAt, want)
	}
	if m.Reads != 1 || m.ReadBytes != int64(len(buf)) {
		t.Fatalf("counters: %d ops, %d bytes", m.Reads, m.ReadBytes)
	}
}

func TestMediumDataIntegrity(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 64)
	m := NewMedium(eng, s, DefaultMediumParams())
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 4096)
	rng.Read(src)
	eng.Go("io", func(p *sim.Proc) {
		if err := m.WriteP(p, 8, src); err != nil {
			t.Error(err)
		}
		got := make([]byte, 4096)
		if err := m.ReadP(p, 8, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("medium round trip mismatch")
		}
	})
	eng.Run()
}

func TestMediumWriteSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 8)
	m := NewMedium(eng, s, DefaultMediumParams())
	buf := bytes.Repeat([]byte{7}, 512)
	if err := m.Write(0, buf, func(error) {}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after submission
	eng.Run()
	got := make([]byte, 512)
	if err := s.ReadBlocks(0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("write observed post-submission mutation")
	}
}

func TestMediumErrorsPropagate(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 8)
	m := NewMedium(eng, s, DefaultMediumParams())
	if err := m.Read(100, make([]byte, 512), func(error) {}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	eng.Go("io", func(p *sim.Proc) {
		if err := m.ReadP(p, 100, make([]byte, 512)); err == nil {
			t.Error("ReadP out-of-range accepted")
		}
	})
	eng.Run()
}

func TestMediumThrottle(t *testing.T) {
	// Halving bandwidth must roughly double streaming time — the Figure 2
	// mechanism.
	elapsed := func(bw float64) sim.Time {
		eng := sim.NewEngine()
		s := NewStore(1024, 4096)
		m := NewMedium(eng, s, MediumParams{ReadBandwidth: bw, WriteBandwidth: bw})
		buf := make([]byte, 1<<20)
		var doneAt sim.Time
		if err := m.Write(0, buf, func(error) { doneAt = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return doneAt
	}
	fast := elapsed(2e9)
	slow := elapsed(1e9)
	ratio := float64(slow) / float64(fast)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("throttle ratio = %.2f, want ~2", ratio)
	}
}

func TestMediumSetBandwidth(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(1024, 1024)
	m := NewMedium(eng, s, DefaultMediumParams())
	m.SetBandwidth(123e6, 456e6)
	if m.Params().ReadBandwidth != 123e6 || m.Params().WriteBandwidth != 456e6 {
		t.Fatalf("params not updated: %+v", m.Params())
	}
}

func TestMediumConcurrentOpsSerialize(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(1024, 1024)
	m := NewMedium(eng, s, MediumParams{ReadBandwidth: 1e9, WriteBandwidth: 1e9})
	var first, second sim.Time
	buf := make([]byte, 100*1024)
	if err := m.Read(0, buf, func(error) { first = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(0, make([]byte, 100*1024), func(error) { second = eng.Now() }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if second < first*19/10 {
		t.Fatalf("reads did not serialize: %v then %v", first, second)
	}
}

func TestMediumFaultInjection(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 64)
	m := NewMedium(eng, s, DefaultMediumParams())
	plan := fault.Plan{Seed: 3}
	plan.Sites[fault.MediumWrite] = fault.SiteParams{OneShot: []int64{1}}
	plan.Sites[fault.MediumRead] = fault.SiteParams{OneShot: []int64{2}}
	m.SetInjector(fault.NewInjector(plan))
	src := bytes.Repeat([]byte{0xAB}, 512)
	eng.Go("io", func(p *sim.Proc) {
		// Write 1 faults and must leave the store untouched.
		if err := m.WriteP(p, 4, src); !IsMediumError(err) {
			t.Errorf("faulted write returned %v, want medium error", err)
		}
		got := make([]byte, 512)
		if err := m.ReadP(p, 4, got); err != nil { // read 1 is clean
			t.Error(err)
		}
		if !bytes.Equal(got, make([]byte, 512)) {
			t.Error("faulted write modified the store")
		}
		// Read 2 faults even though the data is intact.
		if err := m.WriteP(p, 4, src); err != nil { // write 2 is clean
			t.Error(err)
		}
		if err := m.ReadP(p, 4, got); !IsMediumError(err) {
			t.Errorf("faulted read returned %v, want medium error", err)
		}
		// Read 3 succeeds and sees the write-2 data.
		if err := m.ReadP(p, 4, got); err != nil {
			t.Error(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("post-fault read mismatch")
		}
	})
	eng.Run()
	if m.ReadFaults != 1 || m.WriteFaults != 1 {
		t.Fatalf("fault counters: reads=%d writes=%d", m.ReadFaults, m.WriteFaults)
	}
}

func TestMediumInjectedDelay(t *testing.T) {
	elapsed := func(delay sim.Time) sim.Time {
		eng := sim.NewEngine()
		s := NewStore(512, 8)
		m := NewMedium(eng, s, MediumParams{ReadBandwidth: 1e9, WriteBandwidth: 1e9})
		if delay > 0 {
			plan := fault.Plan{Seed: 5}
			plan.Sites[fault.MediumRead] = fault.SiteParams{DelayProb: 1.0, Delay: delay}
			m.SetInjector(fault.NewInjector(plan))
		}
		var doneAt sim.Time
		if err := m.Read(0, make([]byte, 512), func(error) { doneAt = eng.Now() }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return doneAt
	}
	base := elapsed(0)
	slow := elapsed(40 * sim.Microsecond)
	if slow != base+40*sim.Microsecond {
		t.Fatalf("injected delay: base=%v slow=%v", base, slow)
	}
}
