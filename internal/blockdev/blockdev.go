// Package blockdev models the storage medium behind the NeSC controller.
//
// The paper's prototype backs the controller with 1 GB of on-board DDR3 and
// explicitly does "not emulate a specific access latency technology" — the
// medium is a raw logical-block-address space with a latency and a bandwidth.
// We split the model in two:
//
//   - Store: the functional content (bytes per LBA), synchronous and
//     timeless, shared by the device pipeline and by white-box tests.
//   - Medium: the timed access port, with per-operation latency and
//     direction-specific bandwidth serialization. The Figure-2 experiment
//     sweeps the bandwidth of a Medium to emulate storage devices of
//     different speeds, just as the paper throttles an in-memory disk.
package blockdev

import (
	"errors"
	"fmt"
	"hash/crc32"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// castagnoli is the CRC-32C polynomial table used for T10 DIF-style guard
// tags (the same polynomial real protection-information formats use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BlockGuard computes the guard tag of one block image.
func BlockGuard(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// writeRecord is one block's pre-image, captured when write logging is on so
// a crash harness can roll the store back to an earlier consistent point.
type writeRecord struct {
	lba   int64
	data  []byte
	guard uint32
}

// Store is the functional block space: numBlocks blocks of blockSize bytes,
// each carrying an out-of-band CRC-32C guard tag maintained on write.
type Store struct {
	blockSize int
	numBlocks int64
	data      []byte
	guards    []uint32

	logging  bool
	writeLog []writeRecord
}

// NewStore allocates a zeroed block space.
func NewStore(blockSize int, numBlocks int64) *Store {
	if blockSize <= 0 || numBlocks <= 0 {
		panic("blockdev: invalid geometry")
	}
	s := &Store{
		blockSize: blockSize,
		numBlocks: numBlocks,
		data:      make([]byte, int64(blockSize)*numBlocks),
		guards:    make([]uint32, numBlocks),
	}
	zero := BlockGuard(s.data[:blockSize])
	for i := range s.guards {
		s.guards[i] = zero
	}
	return s
}

// BlockSize reports the block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// NumBlocks reports the number of addressable blocks.
func (s *Store) NumBlocks() int64 { return s.numBlocks }

func (s *Store) checkRange(lba int64, n int) error {
	if n%s.blockSize != 0 {
		return fmt.Errorf("blockdev: buffer of %d bytes not a multiple of block size %d", n, s.blockSize)
	}
	blocks := int64(n / s.blockSize)
	if lba < 0 || lba+blocks > s.numBlocks {
		return fmt.Errorf("blockdev: access [%d, %d) outside device of %d blocks", lba, lba+blocks, s.numBlocks)
	}
	return nil
}

// ReadBlocks copies whole blocks starting at lba into p (whose length must
// be a block multiple).
func (s *Store) ReadBlocks(lba int64, p []byte) error {
	if err := s.checkRange(lba, len(p)); err != nil {
		return err
	}
	copy(p, s.data[lba*int64(s.blockSize):])
	return nil
}

// WriteBlocks copies whole blocks from p to the store starting at lba,
// recomputing each block's guard tag (and logging pre-images when the crash
// write log is enabled).
func (s *Store) WriteBlocks(lba int64, p []byte) error {
	if err := s.checkRange(lba, len(p)); err != nil {
		return err
	}
	bs := int64(s.blockSize)
	blocks := int64(len(p)) / bs
	if s.logging {
		for i := int64(0); i < blocks; i++ {
			b := lba + i
			pre := make([]byte, bs)
			copy(pre, s.data[b*bs:])
			s.writeLog = append(s.writeLog, writeRecord{lba: b, data: pre, guard: s.guards[b]})
		}
	}
	copy(s.data[lba*bs:], p)
	for i := int64(0); i < blocks; i++ {
		s.guards[lba+i] = BlockGuard(p[i*bs : (i+1)*bs])
	}
	return nil
}

// Guard returns the stored guard tag for one block.
func (s *Store) Guard(lba int64) uint32 { return s.guards[lba] }

// VerifyGuards recomputes every block's guard and returns the LBAs whose
// stored tag no longer matches the data — the full-device scrub/fsck check
// used by the crash harness. A clean device returns an empty slice.
func (s *Store) VerifyGuards() []int64 {
	var bad []int64
	bs := int64(s.blockSize)
	for b := int64(0); b < s.numBlocks; b++ {
		if BlockGuard(s.data[b*bs:(b+1)*bs]) != s.guards[b] {
			bad = append(bad, b)
		}
	}
	return bad
}

// EnableWriteLog starts recording per-block pre-images on every write. The
// log models the device's completion-ordered write stream: a crash that
// loses the last j block writes is simulated by Rollback(j).
func (s *Store) EnableWriteLog() {
	s.logging = true
	s.writeLog = s.writeLog[:0]
}

// WriteLogLen reports how many block writes the log currently holds.
func (s *Store) WriteLogLen() int { return len(s.writeLog) }

// Rollback undoes the last n logged block writes (restoring data and guard
// pre-images) and truncates them from the log. It returns how many writes
// were actually undone (capped by the log length).
func (s *Store) Rollback(n int) int {
	if n > len(s.writeLog) {
		n = len(s.writeLog)
	}
	bs := int64(s.blockSize)
	for i := 0; i < n; i++ {
		rec := s.writeLog[len(s.writeLog)-1-i]
		copy(s.data[rec.lba*bs:], rec.data)
		s.guards[rec.lba] = rec.guard
	}
	s.writeLog = s.writeLog[:len(s.writeLog)-n]
	return n
}

// Slice exposes the live bytes of a block range for zero-copy device paths.
func (s *Store) Slice(lba int64, nBlocks int64) ([]byte, error) {
	if lba < 0 || nBlocks < 0 || lba+nBlocks > s.numBlocks {
		return nil, fmt.Errorf("blockdev: slice [%d,%d) outside device", lba, lba+nBlocks)
	}
	off := lba * int64(s.blockSize)
	return s.data[off : off+nBlocks*int64(s.blockSize)], nil
}

// MediumParams sets the timing of the access port.
type MediumParams struct {
	// ReadLatency / WriteLatency are fixed per-operation costs (command
	// decode, row activation, ...).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// ReadBandwidth / WriteBandwidth serialize data movement, bytes/second.
	ReadBandwidth  float64
	WriteBandwidth float64
}

// DefaultMediumParams matches the prototype's on-board DDR3 port: the medium
// slightly out-runs the controller so the PCIe/controller path, not the
// medium, sets the ~800 MB/s read and ~1 GB/s write peaks.
func DefaultMediumParams() MediumParams {
	return MediumParams{
		ReadLatency:    300 * sim.Nanosecond,
		WriteLatency:   200 * sim.Nanosecond,
		ReadBandwidth:  1.0e9,
		WriteBandwidth: 1.4e9,
	}
}

// ErrMedium marks an access that failed at the medium itself (a transient or
// latent sector error), as opposed to a range/programming error. Callers use
// IsMediumError to decide whether a retry can help.
var ErrMedium = errors.New("blockdev: medium error")

// IsMediumError reports whether err is a (possibly wrapped) medium error.
func IsMediumError(err error) bool { return errors.Is(err, ErrMedium) }

// ErrIntegrity marks a read whose payload failed guard-tag verification: the
// medium returned data, but the data is wrong. Like medium errors it is
// retryable (a transient flip won't recur), and like them it is distinct
// from range/programming errors.
var ErrIntegrity = errors.New("blockdev: integrity error")

// IsIntegrityError reports whether err is a (possibly wrapped) guard-tag
// verification failure.
func IsIntegrityError(err error) bool { return errors.Is(err, ErrIntegrity) }

// Medium is the timed access port to a Store.
type Medium struct {
	eng       *sim.Engine
	store     *Store
	readPort  *sim.Link
	writePort *sim.Link
	params    MediumParams
	inj       *fault.Injector
	noGuard   bool
	// dev is this medium's device index within a multi-device fabric; the
	// injector's DeviceAccess gate (kill/partition latches) keys on it.
	dev int

	// Reads/Writes count operations; ReadBytes/WriteBytes count payloads.
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	// ReadFaults/WriteFaults count operations failed by fault injection.
	ReadFaults, WriteFaults int64
	// IntegrityErrors counts reads that failed guard verification;
	// RecoveryReads counts slow-path ECC recovery reads.
	IntegrityErrors, RecoveryReads int64
}

// NewMedium wraps store with a timed port on engine eng.
func NewMedium(eng *sim.Engine, store *Store, p MediumParams) *Medium {
	return &Medium{
		eng:       eng,
		store:     store,
		readPort:  sim.NewLink(eng, p.ReadBandwidth, p.ReadLatency, 0),
		writePort: sim.NewLink(eng, p.WriteBandwidth, p.WriteLatency, 0),
		params:    p,
	}
}

// SetInjector installs a fault injector on the access port (nil disables
// injection).
func (m *Medium) SetInjector(inj *fault.Injector) { m.inj = inj }

// SetGuardCheck enables or disables read-side guard verification (on by
// default; the integrity ablation bench turns it off).
func (m *Medium) SetGuardCheck(on bool) { m.noGuard = !on }

// SetDeviceIndex assigns the medium's device identity within a multi-device
// fabric (default 0). Device-kill and partition faults key on it.
func (m *Medium) SetDeviceIndex(dev int) { m.dev = dev }

// DeviceIndex reports the medium's device identity.
func (m *Medium) DeviceIndex() int { return m.dev }

// deviceGate consults the injector's device-level latches. A dead or
// partitioned device fails every access loudly — the DTU's bounded retries
// then surface StatusMediumError, which is what drives the fabric's health
// state machine.
func (m *Medium) deviceGate() bool {
	return m.inj.DeviceAccess(m.dev, m.eng.Now()).Fault
}

// Store returns the functional content behind the port.
func (m *Medium) Store() *Store { return m.store }

// Params returns the current timing parameters.
func (m *Medium) Params() MediumParams { return m.params }

// SetBandwidth reconfigures both directions (the Figure-2 throttle sweep).
func (m *Medium) SetBandwidth(read, write float64) {
	m.params.ReadBandwidth = read
	m.params.WriteBandwidth = write
	m.readPort.SetBandwidth(read)
	m.writePort.SetBandwidth(write)
}

// finish invokes done, optionally after an injected extra delay.
func (m *Medium) finish(delay sim.Time, done func()) {
	if delay > 0 {
		m.eng.After(delay, done)
		return
	}
	done()
}

// Read fetches len(p) bytes (a whole number of blocks) starting at lba and
// invokes done when the data has left the medium (or the medium has reported
// an error, still after the access time). The copy into p happens at
// completion time. A synchronous non-nil return means the request itself was
// malformed (range/alignment) and done will not be called.
func (m *Medium) Read(lba int64, p []byte, done func(error)) error {
	if err := m.store.checkRange(lba, len(p)); err != nil {
		return err
	}
	m.Reads++
	m.ReadBytes += int64(len(p))
	if m.deviceGate() {
		// Dead or partitioned device: fail after the access latency without
		// drawing from the per-site medium streams.
		m.readPort.Transfer(int64(len(p)), func() {
			m.ReadFaults++
			done(fmt.Errorf("%w: device %d unreachable, read at lba %d", ErrMedium, m.dev, lba))
		})
		return nil
	}
	dec := m.inj.MediumAccess(false, lba, int64(len(p)/m.store.blockSize))
	// Fail-slow profiles add chronic extra latency on top of any one-shot
	// injected delay; the base cost the slowdown factor scales is the
	// operation's own service time (fixed latency + serialization).
	slow := m.inj.DegradeDelay(m.dev,
		m.params.ReadLatency+sim.BytesTime(int64(len(p)), m.params.ReadBandwidth), m.eng.Now())
	m.readPort.Transfer(int64(len(p)), func() {
		m.finish(dec.Delay+slow, func() {
			if dec.Fault {
				m.ReadFaults++
				done(fmt.Errorf("%w: read of %d blocks at lba %d", ErrMedium, len(p)/m.store.blockSize, lba))
				return
			}
			if err := m.store.ReadBlocks(lba, p); err != nil {
				panic(err)
			}
			bs := m.store.blockSize
			for _, b := range dec.CorruptBlocks {
				off := int(b-lba) * bs
				fault.Flip(p[off:off+bs], uint64(b))
			}
			if !m.noGuard {
				for i := 0; i*bs < len(p); i++ {
					if BlockGuard(p[i*bs:(i+1)*bs]) != m.store.guards[lba+int64(i)] {
						m.IntegrityErrors++
						done(fmt.Errorf("%w: guard mismatch at lba %d", ErrIntegrity, lba+int64(i)))
						return
					}
				}
			}
			done(nil)
		})
	})
	return nil
}

// Write stores len(p) bytes (a whole number of blocks) at lba and invokes
// done when the medium has absorbed them (or reported an error). The data is
// snapshotted at submission; a faulted write leaves the store untouched.
func (m *Medium) Write(lba int64, p []byte, done func(error)) error {
	if err := m.store.checkRange(lba, len(p)); err != nil {
		return err
	}
	m.Writes++
	m.WriteBytes += int64(len(p))
	if m.deviceGate() {
		m.writePort.Transfer(int64(len(p)), func() {
			m.WriteFaults++
			done(fmt.Errorf("%w: device %d unreachable, write at lba %d", ErrMedium, m.dev, lba))
		})
		return nil
	}
	dec := m.inj.MediumAccess(true, lba, int64(len(p)/m.store.blockSize))
	slow := m.inj.DegradeDelay(m.dev,
		m.params.WriteLatency+sim.BytesTime(int64(len(p)), m.params.WriteBandwidth), m.eng.Now())
	data := make([]byte, len(p))
	copy(data, p)
	m.writePort.Transfer(int64(len(p)), func() {
		m.finish(dec.Delay+slow, func() {
			if dec.Fault {
				m.WriteFaults++
				done(fmt.Errorf("%w: write of %d blocks at lba %d", ErrMedium, len(data)/m.store.blockSize, lba))
				return
			}
			if err := m.store.WriteBlocks(lba, data); err != nil {
				panic(err)
			}
			done(nil)
		})
	})
	return nil
}

// ReadP and WriteP are process-style forms.

// ReadP performs Read and blocks the process until completion.
func (m *Medium) ReadP(p *sim.Proc, lba int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		if e := m.Read(lba, buf, func(opErr error) {
			err = opErr
			done()
		}); e != nil {
			err = e
			done()
		}
	})
	return err
}

// WriteP performs Write and blocks the process until completion.
func (m *Medium) WriteP(p *sim.Proc, lba int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		if e := m.Write(lba, buf, func(opErr error) {
			err = opErr
			done()
		}); e != nil {
			err = e
			done()
		}
	})
	return err
}

// recoveryPenalty is the extra per-operation latency of a heroic recovery
// read relative to a normal one (drive-internal ECC retries, read-retry with
// shifted thresholds, ...).
const recoveryPenalty = 8

// RecoverP performs a slow-path recovery read: the medium's internal ECC
// machinery reconstructs the true sector contents, bypassing whatever made
// the fast-path read come back corrupted. It costs recoveryPenalty times the
// normal read latency plus the transfer time, consults no fault injector,
// and always returns the store's true bytes. Scrubbers use it to source the
// repair data for a rewrite.
func (m *Medium) RecoverP(p *sim.Proc, lba int64, buf []byte) error {
	if err := m.store.checkRange(lba, len(buf)); err != nil {
		return err
	}
	m.Reads++
	m.RecoveryReads++
	m.ReadBytes += int64(len(buf))
	p.Wait(func(done func()) {
		m.readPort.Transfer(int64(len(buf)), func() {
			m.eng.After(recoveryPenalty*m.params.ReadLatency, done)
		})
	})
	return m.store.ReadBlocks(lba, buf)
}
