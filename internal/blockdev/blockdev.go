// Package blockdev models the storage medium behind the NeSC controller.
//
// The paper's prototype backs the controller with 1 GB of on-board DDR3 and
// explicitly does "not emulate a specific access latency technology" — the
// medium is a raw logical-block-address space with a latency and a bandwidth.
// We split the model in two:
//
//   - Store: the functional content (bytes per LBA), synchronous and
//     timeless, shared by the device pipeline and by white-box tests.
//   - Medium: the timed access port, with per-operation latency and
//     direction-specific bandwidth serialization. The Figure-2 experiment
//     sweeps the bandwidth of a Medium to emulate storage devices of
//     different speeds, just as the paper throttles an in-memory disk.
package blockdev

import (
	"errors"
	"fmt"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// Store is the functional block space: numBlocks blocks of blockSize bytes.
type Store struct {
	blockSize int
	numBlocks int64
	data      []byte
}

// NewStore allocates a zeroed block space.
func NewStore(blockSize int, numBlocks int64) *Store {
	if blockSize <= 0 || numBlocks <= 0 {
		panic("blockdev: invalid geometry")
	}
	return &Store{
		blockSize: blockSize,
		numBlocks: numBlocks,
		data:      make([]byte, int64(blockSize)*numBlocks),
	}
}

// BlockSize reports the block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// NumBlocks reports the number of addressable blocks.
func (s *Store) NumBlocks() int64 { return s.numBlocks }

func (s *Store) checkRange(lba int64, n int) error {
	if n%s.blockSize != 0 {
		return fmt.Errorf("blockdev: buffer of %d bytes not a multiple of block size %d", n, s.blockSize)
	}
	blocks := int64(n / s.blockSize)
	if lba < 0 || lba+blocks > s.numBlocks {
		return fmt.Errorf("blockdev: access [%d, %d) outside device of %d blocks", lba, lba+blocks, s.numBlocks)
	}
	return nil
}

// ReadBlocks copies whole blocks starting at lba into p (whose length must
// be a block multiple).
func (s *Store) ReadBlocks(lba int64, p []byte) error {
	if err := s.checkRange(lba, len(p)); err != nil {
		return err
	}
	copy(p, s.data[lba*int64(s.blockSize):])
	return nil
}

// WriteBlocks copies whole blocks from p to the store starting at lba.
func (s *Store) WriteBlocks(lba int64, p []byte) error {
	if err := s.checkRange(lba, len(p)); err != nil {
		return err
	}
	copy(s.data[lba*int64(s.blockSize):], p)
	return nil
}

// Slice exposes the live bytes of a block range for zero-copy device paths.
func (s *Store) Slice(lba int64, nBlocks int64) ([]byte, error) {
	if lba < 0 || nBlocks < 0 || lba+nBlocks > s.numBlocks {
		return nil, fmt.Errorf("blockdev: slice [%d,%d) outside device", lba, lba+nBlocks)
	}
	off := lba * int64(s.blockSize)
	return s.data[off : off+nBlocks*int64(s.blockSize)], nil
}

// MediumParams sets the timing of the access port.
type MediumParams struct {
	// ReadLatency / WriteLatency are fixed per-operation costs (command
	// decode, row activation, ...).
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// ReadBandwidth / WriteBandwidth serialize data movement, bytes/second.
	ReadBandwidth  float64
	WriteBandwidth float64
}

// DefaultMediumParams matches the prototype's on-board DDR3 port: the medium
// slightly out-runs the controller so the PCIe/controller path, not the
// medium, sets the ~800 MB/s read and ~1 GB/s write peaks.
func DefaultMediumParams() MediumParams {
	return MediumParams{
		ReadLatency:    300 * sim.Nanosecond,
		WriteLatency:   200 * sim.Nanosecond,
		ReadBandwidth:  1.0e9,
		WriteBandwidth: 1.4e9,
	}
}

// ErrMedium marks an access that failed at the medium itself (a transient or
// latent sector error), as opposed to a range/programming error. Callers use
// IsMediumError to decide whether a retry can help.
var ErrMedium = errors.New("blockdev: medium error")

// IsMediumError reports whether err is a (possibly wrapped) medium error.
func IsMediumError(err error) bool { return errors.Is(err, ErrMedium) }

// Medium is the timed access port to a Store.
type Medium struct {
	eng       *sim.Engine
	store     *Store
	readPort  *sim.Link
	writePort *sim.Link
	params    MediumParams
	inj       *fault.Injector

	// Reads/Writes count operations; ReadBytes/WriteBytes count payloads.
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
	// ReadFaults/WriteFaults count operations failed by fault injection.
	ReadFaults, WriteFaults int64
}

// NewMedium wraps store with a timed port on engine eng.
func NewMedium(eng *sim.Engine, store *Store, p MediumParams) *Medium {
	return &Medium{
		eng:       eng,
		store:     store,
		readPort:  sim.NewLink(eng, p.ReadBandwidth, p.ReadLatency, 0),
		writePort: sim.NewLink(eng, p.WriteBandwidth, p.WriteLatency, 0),
		params:    p,
	}
}

// SetInjector installs a fault injector on the access port (nil disables
// injection).
func (m *Medium) SetInjector(inj *fault.Injector) { m.inj = inj }

// Store returns the functional content behind the port.
func (m *Medium) Store() *Store { return m.store }

// Params returns the current timing parameters.
func (m *Medium) Params() MediumParams { return m.params }

// SetBandwidth reconfigures both directions (the Figure-2 throttle sweep).
func (m *Medium) SetBandwidth(read, write float64) {
	m.params.ReadBandwidth = read
	m.params.WriteBandwidth = write
	m.readPort.SetBandwidth(read)
	m.writePort.SetBandwidth(write)
}

// finish invokes done, optionally after an injected extra delay.
func (m *Medium) finish(delay sim.Time, done func()) {
	if delay > 0 {
		m.eng.After(delay, done)
		return
	}
	done()
}

// Read fetches len(p) bytes (a whole number of blocks) starting at lba and
// invokes done when the data has left the medium (or the medium has reported
// an error, still after the access time). The copy into p happens at
// completion time. A synchronous non-nil return means the request itself was
// malformed (range/alignment) and done will not be called.
func (m *Medium) Read(lba int64, p []byte, done func(error)) error {
	if err := m.store.checkRange(lba, len(p)); err != nil {
		return err
	}
	m.Reads++
	m.ReadBytes += int64(len(p))
	dec := m.inj.MediumAccess(false, lba, int64(len(p)/m.store.blockSize))
	m.readPort.Transfer(int64(len(p)), func() {
		m.finish(dec.Delay, func() {
			if dec.Fault {
				m.ReadFaults++
				done(fmt.Errorf("%w: read of %d blocks at lba %d", ErrMedium, len(p)/m.store.blockSize, lba))
				return
			}
			if err := m.store.ReadBlocks(lba, p); err != nil {
				panic(err)
			}
			done(nil)
		})
	})
	return nil
}

// Write stores len(p) bytes (a whole number of blocks) at lba and invokes
// done when the medium has absorbed them (or reported an error). The data is
// snapshotted at submission; a faulted write leaves the store untouched.
func (m *Medium) Write(lba int64, p []byte, done func(error)) error {
	if err := m.store.checkRange(lba, len(p)); err != nil {
		return err
	}
	m.Writes++
	m.WriteBytes += int64(len(p))
	dec := m.inj.MediumAccess(true, lba, int64(len(p)/m.store.blockSize))
	data := make([]byte, len(p))
	copy(data, p)
	m.writePort.Transfer(int64(len(p)), func() {
		m.finish(dec.Delay, func() {
			if dec.Fault {
				m.WriteFaults++
				done(fmt.Errorf("%w: write of %d blocks at lba %d", ErrMedium, len(data)/m.store.blockSize, lba))
				return
			}
			if err := m.store.WriteBlocks(lba, data); err != nil {
				panic(err)
			}
			done(nil)
		})
	})
	return nil
}

// ReadP and WriteP are process-style forms.

// ReadP performs Read and blocks the process until completion.
func (m *Medium) ReadP(p *sim.Proc, lba int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		if e := m.Read(lba, buf, func(opErr error) {
			err = opErr
			done()
		}); e != nil {
			err = e
			done()
		}
	})
	return err
}

// WriteP performs Write and blocks the process until completion.
func (m *Medium) WriteP(p *sim.Proc, lba int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		if e := m.Write(lba, buf, func(opErr error) {
			err = opErr
			done()
		}); e != nil {
			err = e
			done()
		}
	})
	return err
}
