package blockdev

import (
	"bytes"
	"testing"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

func TestStoreGuardsTrackWrites(t *testing.T) {
	s := NewStore(512, 8)
	zero := BlockGuard(make([]byte, 512))
	if g := s.Guard(3); g != zero {
		t.Fatalf("fresh block guard = %#x, want zero-block CRC %#x", g, zero)
	}
	src := bytes.Repeat([]byte{0x5A}, 512)
	if err := s.WriteBlocks(3, src); err != nil {
		t.Fatal(err)
	}
	if g := s.Guard(3); g != BlockGuard(src) {
		t.Fatalf("guard = %#x, want %#x", g, BlockGuard(src))
	}
	if bad := s.VerifyGuards(); len(bad) != 0 {
		t.Fatalf("consistent store failed verification at %v", bad)
	}
}

func TestStoreWriteLogRollback(t *testing.T) {
	s := NewStore(512, 8)
	a := bytes.Repeat([]byte{1}, 512)
	b := bytes.Repeat([]byte{2}, 512)
	if err := s.WriteBlocks(5, a); err != nil {
		t.Fatal(err)
	}
	s.EnableWriteLog()
	if err := s.WriteBlocks(5, b); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBlocks(6, b); err != nil {
		t.Fatal(err)
	}
	if n := s.WriteLogLen(); n != 2 {
		t.Fatalf("write log holds %d records, want 2", n)
	}

	// Tear off both logged writes: 5 reverts to its pre-log content, 6 to
	// zeroes, and the guards must follow the data back.
	if got := s.Rollback(2); got != 2 {
		t.Fatalf("Rollback undid %d writes, want 2", got)
	}
	got := make([]byte, 512)
	if err := s.ReadBlocks(5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("block 5 did not revert to its pre-image")
	}
	if err := s.ReadBlocks(6, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 512)) {
		t.Fatal("block 6 did not revert to zeroes")
	}
	if bad := s.VerifyGuards(); len(bad) != 0 {
		t.Fatalf("guards inconsistent after rollback: %v", bad)
	}
}

// TestMediumGuardCatchesCorruption is the end-to-end detection story at the
// medium boundary: a latched-corrupt sector read through the medium fails
// with ErrIntegrity instead of returning flipped bytes, a retry of a
// transient flip succeeds, and SetGuardCheck(false) re-opens the blind spot.
func TestMediumGuardCatchesCorruption(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 64)
	m := NewMedium(eng, s, DefaultMediumParams())
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 11, CorruptSectors: []int64{9}}))
	src := bytes.Repeat([]byte{0xC3}, 512)
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, 512)
		if err := m.ReadP(p, 9, buf); !IsIntegrityError(err) {
			t.Errorf("corrupt sector read returned %v, want integrity error", err)
		}
		// A successful rewrite heals the latch; the next read is clean.
		if err := m.WriteP(p, 9, src); err != nil {
			t.Error(err)
		}
		if err := m.ReadP(p, 9, buf); err != nil {
			t.Errorf("read after healing write: %v", err)
		}
		if !bytes.Equal(buf, src) {
			t.Error("healed read returned wrong data")
		}
	})
	eng.Run()
	if m.IntegrityErrors == 0 {
		t.Fatal("medium counted no integrity errors")
	}
}

func TestMediumGuardCheckDisabledIsSilent(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 64)
	m := NewMedium(eng, s, DefaultMediumParams())
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 11, CorruptSectors: []int64{9}}))
	m.SetGuardCheck(false)
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, 512)
		// The exact silent escape the guards exist to prevent: no error, and
		// the payload differs from the store's true (zero) content.
		if err := m.ReadP(p, 9, buf); err != nil {
			t.Errorf("unguarded read failed: %v", err)
		}
		if bytes.Equal(buf, make([]byte, 512)) {
			t.Error("unguarded read of a corrupt sector returned clean data; injection is broken")
		}
	})
	eng.Run()
	if m.IntegrityErrors != 0 {
		t.Fatalf("guard check disabled but IntegrityErrors = %d", m.IntegrityErrors)
	}
}

func TestMediumRecoverPBypassesInjector(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStore(512, 64)
	m := NewMedium(eng, s, DefaultMediumParams())
	m.SetInjector(fault.NewInjector(fault.Plan{Seed: 11, CorruptSectors: []int64{9}}))
	src := bytes.Repeat([]byte{0x7E}, 512)
	if err := s.WriteBlocks(9, src); err != nil {
		t.Fatal(err)
	}
	eng.Go("io", func(p *sim.Proc) {
		buf := make([]byte, 512)
		start := p.Now()
		if err := m.RecoverP(p, 9, buf); err != nil {
			t.Errorf("recovery read failed: %v", err)
		}
		if !bytes.Equal(buf, src) {
			t.Error("recovery read returned corrupted data")
		}
		if cost, normal := p.Now()-start, m.Params().ReadLatency; cost < normal {
			t.Errorf("heroic recovery took %v, cheaper than a normal read (%v)", cost, normal)
		}
	})
	eng.Run()
	if m.RecoveryReads != 1 {
		t.Fatalf("RecoveryReads = %d, want 1", m.RecoveryReads)
	}
}
