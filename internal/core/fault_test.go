package core

import (
	"testing"

	"nesc/internal/extent"
	"nesc/internal/fault"
	"nesc/internal/sim"
)

// Fault-injection and recovery tests: DTU medium retries, function-level
// reset, and the observability counters for silently dropped work.

func (r *rig) installPlan(plan fault.Plan) *fault.Injector {
	inj := fault.NewInjector(plan)
	r.ctl.Medium.SetInjector(inj)
	r.fab.SetInjector(inj)
	return inj
}

func TestMediumRetryRecoversTransientError(t *testing.T) {
	r := newRig(t, DefaultParams())
	plan := fault.Plan{Seed: 1}
	plan.Sites[fault.MediumRead] = fault.SiteParams{OneShot: []int64{1}}
	r.installPlan(plan)
	r.eng.Go("test", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 8}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openFunction(p, 1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusOK {
			t.Errorf("read after transient medium error: status %d, want OK", st)
		}
	})
	r.run()
	vf := r.ctl.VF(0)
	if vf.MediumRetries != 1 || vf.MediumErrors != 0 {
		t.Fatalf("retries=%d errors=%d, want 1/0", vf.MediumRetries, vf.MediumErrors)
	}
	if r.ctl.MediumRetries != 1 {
		t.Fatalf("controller retries=%d, want 1", r.ctl.MediumRetries)
	}
}

func TestMediumErrorLatchesAfterRetries(t *testing.T) {
	r := newRig(t, DefaultParams())
	plan := fault.Plan{Seed: 1}
	plan.Sites[fault.MediumRead] = fault.SiteParams{Prob: 1.0}
	r.installPlan(plan)
	r.eng.Go("test", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 8}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openFunction(p, 1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusMediumError {
			t.Errorf("unreadable block: status %d, want StatusMediumError", st)
		}
		// The AER registers expose the per-function counters.
		if got := r.mmioR(p, d.pageOff+RegErrMedium); got != 1 {
			t.Errorf("RegErrMedium = %d, want 1", got)
		}
		if got := r.mmioR(p, d.pageOff+RegErrRetries); got != uint64(r.ctl.P.MediumRetryMax) {
			t.Errorf("RegErrRetries = %d, want %d", got, r.ctl.P.MediumRetryMax)
		}
	})
	r.run()
	vf := r.ctl.VF(0)
	if vf.MediumErrors != 1 || vf.MediumRetries != int64(r.ctl.P.MediumRetryMax) {
		t.Fatalf("errors=%d retries=%d, want 1/%d", vf.MediumErrors, vf.MediumRetries, r.ctl.P.MediumRetryMax)
	}
}

func TestFLRAbortsWedgedFunction(t *testing.T) {
	r := newRig(t, DefaultParams())
	// No miss handler installed: a translation miss wedges the VF forever —
	// exactly the state FLR exists to recover.
	r.eng.Go("test", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 8}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openFunction(p, 1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		// A write into a hole latches a miss and parks a walker.
		var desc [DescBytes]byte
		EncodeDescriptor(desc[:], OpWrite, 1, 32, 1, buf)
		if err := r.mem.Write(d.ringBase, desc[:]); err != nil {
			t.Error(err)
		}
		d.prod++
		r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod))
		p.Sleep(100 * sim.Microsecond)
		if got := r.mmioR(p, d.pageOff+RegReset); got != 1 {
			t.Errorf("RegReset before FLR = %d, want 1 (in-flight)", got)
		}
		r.mmioW(p, d.pageOff+RegReset, 1)
		for r.mmioR(p, d.pageOff+RegReset) != 0 {
			p.Sleep(5 * sim.Microsecond)
		}
		if got := r.mmioR(p, d.pageOff+RegErrResets); got != 1 {
			t.Errorf("RegErrResets = %d, want 1", got)
		}
	})
	r.run()
	vf := r.ctl.VF(0)
	if vf.Resets != 1 || r.ctl.FLRs != 1 {
		t.Fatalf("resets=%d flrs=%d, want 1/1", vf.Resets, r.ctl.FLRs)
	}
	if vf.Inflight() != 0 {
		t.Fatalf("inflight=%d after drain, want 0", vf.Inflight())
	}
	if r.ctl.AbortedChunks == 0 {
		t.Fatal("no chunks aborted by the reset")
	}
	if vf.missPending {
		t.Fatal("miss latch survived the reset")
	}
	for _, q := range vf.queues {
		if q.ringSize != 0 || q.ringBase != 0 || q.cplBase != 0 {
			t.Fatal("ring state survived the reset")
		}
	}
	// The function stays provisioned: FLR recovers, it does not deprovision.
	if !vf.Enabled() || vf.SizeBlocks() != 64 {
		t.Fatal("management state lost by the reset")
	}
}

func TestFunctionRecoversAfterFLR(t *testing.T) {
	r := newRig(t, DefaultParams())
	r.eng.Go("test", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 8}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openFunction(p, 1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusOK {
			t.Errorf("pre-reset read: status %d", st)
		}
		r.mmioW(p, d.pageOff+RegReset, 1)
		for r.mmioR(p, d.pageOff+RegReset) != 0 {
			p.Sleep(5 * sim.Microsecond)
		}
		// Reprogram the rings (the hypervisor/driver recovery path) and run
		// fresh I/O through the recovered function.
		d2 := r.openFunction(p, 1)
		if st := d2.io(p, OpRead, 2, 1, buf); st != StatusOK {
			t.Errorf("post-reset read: status %d", st)
		}
	})
	r.run()
}

func TestFetchDropIsCounted(t *testing.T) {
	r := newRig(t, DefaultParams())
	plan := fault.Plan{Seed: 1}
	// The first device DMA read in this scenario is the descriptor fetch.
	plan.Sites[fault.DMARead] = fault.SiteParams{OneShot: []int64{1}}
	r.installPlan(plan)
	r.eng.Go("test", func(p *sim.Proc) {
		d := r.openFunction(p, 0)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		var desc [DescBytes]byte
		EncodeDescriptor(desc[:], OpRead, 1, 0, 1, buf)
		if err := r.mem.Write(d.ringBase, desc[:]); err != nil {
			t.Error(err)
		}
		d.prod++
		r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod))
	})
	r.run()
	if r.ctl.FetchDrops != 1 || r.ctl.PF().FetchDrops != 1 {
		t.Fatalf("fetch drops: ctl=%d pf=%d, want 1/1", r.ctl.FetchDrops, r.ctl.PF().FetchDrops)
	}
	if r.ctl.ReqsDone != 0 {
		t.Fatalf("dropped fetch still completed a request")
	}
}

func TestCompletionDropIsCounted(t *testing.T) {
	r := newRig(t, DefaultParams())
	plan := fault.Plan{Seed: 1}
	// For a PF write the first device DMA write is the completion entry.
	plan.Sites[fault.DMAWrite] = fault.SiteParams{OneShot: []int64{1}}
	r.installPlan(plan)
	r.eng.Go("test", func(p *sim.Proc) {
		d := r.openFunction(p, 0)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		var desc [DescBytes]byte
		EncodeDescriptor(desc[:], OpWrite, 1, 0, 1, buf)
		if err := r.mem.Write(d.ringBase, desc[:]); err != nil {
			t.Error(err)
		}
		d.prod++
		r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod))
	})
	r.run()
	if r.ctl.CplDrops != 1 || r.ctl.PF().CplDrops != 1 {
		t.Fatalf("cpl drops: ctl=%d pf=%d, want 1/1", r.ctl.CplDrops, r.ctl.PF().CplDrops)
	}
	// The request itself completed device-side (the data write happened).
	if r.ctl.ReqsDone != 1 {
		t.Fatalf("ReqsDone=%d, want 1", r.ctl.ReqsDone)
	}
}

func TestMissResendRecoversDroppedMSI(t *testing.T) {
	p := DefaultParams()
	p.MissResendInterval = 50 * sim.Microsecond
	r := newRig(t, p)
	plan := fault.Plan{Seed: 1}
	// Drop the first miss MSI on the wire; the resend timer must re-raise it.
	plan.Sites[fault.MSI] = fault.SiteParams{OneShot: []int64{1}}
	r.installPlan(plan)
	r.missHandler = func(hp *sim.Proc) {
		mgmt := r.bar + r.ctl.MgmtPageOffset()
		r.mmioW(hp, mgmt+MgmtRewalk, RewalkFail)
	}
	r.eng.Go("test", func(tp *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 8}})
		r.setVF(tp, 0, tr.Root(), 64)
		d := r.openFunction(tp, 1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		// Write into a hole: miss; first MSI dropped; resend delivers it.
		if st := d.io(tp, OpWrite, 32, 1, buf); st != StatusNoSpace {
			t.Errorf("hole write: status %d, want StatusNoSpace", st)
		}
	})
	r.run()
	if r.ctl.MissResends == 0 {
		t.Fatal("miss MSI was not resent")
	}
	if r.missMSIs == 0 {
		t.Fatal("miss handler never ran")
	}
}
