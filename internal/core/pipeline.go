package core

import (
	"encoding/binary"

	"nesc/internal/blockdev"
	"nesc/internal/extent"
	"nesc/internal/fault"
	"nesc/internal/pcie"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/trace"
)

// The controller pipeline: descriptor fetchers (one per function), the
// round-robin VF multiplexer, the translation unit's walkers, and the
// data-transfer unit channels. Each stage is a process connected to the next
// by a bounded queue, so a congested stage exerts backpressure upstream —
// except the PF's out-of-band path, which bypasses translation entirely.

// StatusDMAFault reports a request whose buffer DMA faulted in the IOMMU.
const StatusDMAFault = ring.StatusDMAFault

// fetchLoop services a function's doorbells: it round-robins across the
// function's queue pairs, DMAs new request descriptors from the chosen
// queue's submission ring in host memory, validates them, and hands them to the VF multiplexer
// (or, for the PF, splits them straight into the OOB queue). This intra-
// function scheduler sits underneath the inter-VF deficit-round-robin
// multiplexer: queues of one function share that function's fetch bandwidth
// fairly, while VFs compete with each other exactly as before. After an
// MMIO-announced batch drains, a queue armed with a shadow-doorbell block
// keeps following the guest's shadow writes until the ring is truly idle.
func (f *Function) fetchLoop(p *sim.Proc) {
	desc := make([]byte, DescBytes)
	for {
		f.fetchW.Acquire(p)
		// Pick the next queue with a pending doorbell, round-robin. Slots
		// with no queue pair leased are skipped.
		var q *fnQueue
		var prod uint32
		for scanned := 0; scanned < len(f.queues); scanned++ {
			cand := f.queues[f.fetchRR]
			f.fetchRR = (f.fetchRR + 1) % len(f.queues)
			if cand == nil {
				continue
			}
			if v, ok := cand.doorbells.TryPop(); ok {
				q, prod = cand, v
				break
			}
		}
		if q == nil {
			continue // doorbell drained by a reset; the semaphore over-counts
		}
		f.drainTo(p, q, prod, desc)
		if q.shadowBase != 0 {
			f.shadowFollow(p, q, desc)
		}
	}
}

// drainTo fetches, decodes, and dispatches descriptors until q's consumer
// index reaches prod (or the ring is torn down / a fetch DMA fails).
func (f *Function) drainTo(p *sim.Proc, q *fnQueue, prod uint32, desc []byte) {
	c := f.c
	for q.consumed != prod {
		if q.ringSize == 0 {
			break // ring torn down after the doorbell was accepted
		}
		tFetch := p.Now()
		if err := c.dmaReadP(p, c.pf.id, ring.DescSlot(q.ringBase, q.consumed, q.ringSize), desc); err != nil {
			// Descriptor fetch failed: the doorbell's remaining requests
			// are lost. The driver's completion timeout recovers them.
			f.FetchDrops++
			c.FetchDrops++
			c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindDrop, Fn: f.idx, Arg: uint64(prod)})
			break
		}
		p.Sleep(c.P.DescriptorFetchTime)
		q.consumed++
		rawOp, id, lba, count, buf, guard := ring.DecodeDescriptorPI(desc)
		op := ring.OpCode(rawOp)
		req := &Request{fn: f, q: q, Op: op, ID: id, LBA: lba, Count: count, Buf: buf, left: int(count), epoch: f.resetEpoch, qGen: q.gen,
			pi: rawOp&ring.OpFlagPI != 0, piGuard: guard, t0: tFetch}
		c.reqSeq++
		req.ReqID = c.reqSeq
		if q.deadline > 0 {
			req.deadline = tFetch + q.deadline
		}
		req.obs = c.P.CollectBreakdown || c.instrumented()
		if req.obs {
			req.span = c.Spans.Start(f.idx, q.idx, opName(op), id, lba, count, tFetch)
			if req.span != nil {
				req.span.ReqID = req.ReqID
			}
			req.span.Phase(trace.PhaseFetch, -1, tFetch, p.Now(), "")
			c.observe(mFetchNs, req, p.Now()-tFetch)
			c.seg(req, slo.SegFetch, p.Now()-tFetch)
		}
		c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindFetch, Fn: f.idx, LBA: lba, Arg: uint64(id)})
		f.Reqs++
		q.Reqs++
		f.Blocks += int64(count)
		f.inflight++
		switch {
		case !f.enabled:
			req.status = StatusDisabled
			c.sendCompletion(p, req)
		case lba+uint64(count) > f.sizeBlocks || (op != OpRead && op != OpWrite && op != OpVerify):
			req.status = StatusOutOfRange
			c.sendCompletion(p, req)
		case count == 0:
			c.sendCompletion(p, req)
		case f.idx == 0:
			// PF out-of-band channel: pLBAs, no translation. Verify
			// chunks take the scavenger-priority scrub queue instead of
			// the OOB fast path.
			bs := int64(c.P.BlockSize)
			for i := uint32(0); i < count; i++ {
				ch := &chunk{req: req, idx: int(i), lba: lba + uint64(i), buf: buf + int64(i)*bs}
				if op == OpVerify {
					c.scrubQ.Push(p, ch)
				} else {
					c.oobQ.Push(p, ch)
				}
				c.dtuW.Release()
			}
		case c.admitBusy(f, req):
			// Admission gate: the function is over its inflight budget, or
			// the backlog estimate says this deadline-armed request cannot
			// finish in time. Fail fast with the retryable busy status —
			// nothing was executed, the driver backs off and resubmits.
			req.status = StatusBusy
			f.AdmitRejects++
			c.AdmitRejects++
			if c.Board != nil {
				c.Board.Emit(slo.Event{At: p.Now(), Kind: slo.EventAdmitReject,
					Dev: c.P.DeviceID, VF: f.idx, ReqID: req.ReqID})
			}
			c.sendCompletion(p, req)
		default:
			req.admitted = true
			f.pendingChunks += int64(count)
			f.reqQ.Push(p, req)
			c.muxNote(f)
			c.muxW.Release()
		}
	}
}

// admitBusy is the per-VF admission gate, consulted at descriptor fetch.
// Two triggers, both off by default: an AdmitInflight budget on fetched-but-
// uncompleted requests, and — for deadline-armed requests — a feasibility
// estimate (pending chunks × the DTU's chunk-service EWMA) showing the
// request cannot complete inside its budget. Pure arithmetic on state the
// fetch path already holds; with both knobs off it is two false branches.
func (c *Controller) admitBusy(f *Function, req *Request) bool {
	// f.inflight already counts this request (incremented at fetch), so a
	// budget of N admits N concurrently.
	if c.P.AdmitInflight > 0 && f.inflight > int64(c.P.AdmitInflight) {
		return true
	}
	if req.deadline > 0 && c.chunkEWMA > 0 {
		// Feasibility: could this request *start* before its deadline, given
		// the function's queued work and the smoothed chunk service time?
		// Only work ahead of the request counts — charging its own chunks
		// would wedge the gate after a slow episode (an empty queue could
		// never refresh the inflated EWMA, because refreshing it requires
		// admitting something). Requests that slip past this estimate are
		// still caught by the per-stage deadline checks downstream.
		est := sim.Time(f.pendingChunks) * c.chunkEWMA
		if req.t0+est > req.deadline {
			return true
		}
	}
	return false
}

// expired reports whether a deadline-armed request's budget has run out.
func expired(r *Request, now sim.Time) bool {
	return r.deadline > 0 && now >= r.deadline
}

// shadowFollow is the device half of shadow-doorbell batching. While the
// device was fetching, the guest may have published newer producer indices
// only in the queue's SHADOW word, skipping the doorbell MMIO. Before
// parking, the device chases those: it re-reads SHADOW and drains anything
// new; once caught up it publishes its consumed index in the EVENT word —
// the guest's cue that the next submission must ring — and then re-reads
// SHADOW one final time, which closes the race with a guest that read a
// stale EVENT and skipped its ring just as the device was leaving. Every
// step re-validates the lease generation and ring state so an FLR or a
// pool return mid-dance simply ends the chase.
func (f *Function) shadowFollow(p *sim.Proc, q *fnQueue, desc []byte) {
	c := f.c
	gen := q.gen
	w := make([]byte, 4)
	for {
		if q.gen != gen || q.ringSize == 0 || q.shadowBase == 0 {
			return
		}
		if err := c.dmaReadP(p, c.pf.id, q.shadowBase+ring.ShadowOffProd, w); err != nil {
			return
		}
		prod := binary.BigEndian.Uint32(w)
		if q.gen != gen || q.ringSize == 0 {
			return
		}
		if prod != q.consumed && ring.DoorbellValid(prod, q.consumed, q.ringSize) {
			c.ShadowBatches++
			f.drainTo(p, q, prod, desc)
			continue
		}
		// Caught up: publish how far we got, then look one last time.
		binary.BigEndian.PutUint32(w, q.consumed)
		if err := c.dmaWriteP(p, c.pf.id, q.shadowBase+ring.ShadowOffEvent, w); err != nil {
			return
		}
		if q.gen != gen || q.ringSize == 0 || q.shadowBase == 0 {
			return
		}
		if err := c.dmaReadP(p, c.pf.id, q.shadowBase+ring.ShadowOffProd, w); err != nil {
			return
		}
		prod = binary.BigEndian.Uint32(w)
		if q.gen != gen || q.ringSize == 0 {
			return
		}
		if prod != q.consumed && ring.DoorbellValid(prod, q.consumed, q.ringSize) {
			c.ShadowBatches++
			f.drainTo(p, q, prod, desc)
			continue
		}
		return
	}
}

// muxLoop is the VF multiplexer: it dequeues client requests round-robin
// "to prevent client starvation" (paper §V-A), extended with per-VF weights
// (deficit round robin) for the QoS policy of §IV-D. With all weights at
// the default of 1 this degenerates to plain round robin. The scheduler
// walks the active-VF work list — VFs join when a fetched request lands in
// their queue and leave when it drains — so a pick costs O(active), not
// O(NumVFs).
func (c *Controller) muxLoop(p *sim.Proc) {
	for {
		c.muxW.Acquire(p)
		var req *Request
		for pass := 0; pass < 2 && req == nil; pass++ {
			b := c.pickActive(c.muxActive, &c.muxRR, func(i int) bool {
				f := c.vfAt(i)
				return f != nil && f.credit > 0
			})
			if b >= 0 {
				f := c.vfAt(b)
				r, _ := f.reqQ.TryPop()
				f.credit--
				if f.reqQ.Len() == 0 {
					clearBit(c.muxActive, b)
				}
				req = r
			} else {
				// Every backlogged VF exhausted its credit: start a new
				// scheduling round.
				c.muxRefill()
			}
		}
		if req == nil {
			continue // accounting mismatch cannot occur; defensive
		}
		if req.epoch != req.fn.resetEpoch {
			// Fetched before a function-level reset: abort without splitting.
			req.status = StatusAborted
			c.AbortedChunks += int64(req.left)
			c.sendCompletion(p, req)
			continue
		}
		if expired(req, p.Now()) {
			// Deadline already blown waiting for the multiplexer: abandon
			// before splitting — the submitter has moved on.
			req.status = StatusBusy
			c.DeadlineExpirations += int64(req.left)
			c.noteDeadline(p.Now(), req, "mux")
			c.sendCompletion(p, req)
			continue
		}
		bs := int64(c.P.BlockSize)
		for i := uint32(0); i < req.Count; i++ {
			p.Sleep(c.P.MuxChunkTime)
			ch := &chunk{req: req, idx: int(i), lba: req.LBA + uint64(i), buf: req.Buf + int64(i)*bs}
			if req.obs {
				ch.tQueued = p.Now()
			}
			c.vlbaQ.Push(p, ch)
		}
	}
}

// walkerLoop is one translation-unit walker. It first consults the BTLB; on
// a miss it walks the VF's extent tree with DMA reads from host memory. A
// translation that cannot complete (hole on a write, pruned subtree) latches
// the miss registers, interrupts the hypervisor through the PF, and parks
// until RewalkTree releases it (paper Fig. 5).
func (c *Controller) walkerLoop(p *sim.Proc) {
	nodeImg := make([]byte, extent.NodeBytes(c.P.TreeFanout))
	for {
		ch := c.vlbaQ.Pop(p)
		f := ch.req.fn
		if ch.req.epoch != f.resetEpoch {
			c.completeChunk(p, ch, StatusAborted)
			continue
		}
		if expired(ch.req, p.Now()) {
			c.DeadlineExpirations++
			c.noteDeadline(p.Now(), ch.req, "walker")
			c.completeChunk(p, ch, StatusBusy)
			continue
		}
		if ch.req.obs {
			ch.tTransIn = p.Now()
			if c.P.CollectBreakdown {
				c.Breakdown.QueueWait.Add((ch.tTransIn - ch.tQueued).Micros())
			}
			c.observe(mQueueWaitNs, ch.req, ch.tTransIn-ch.tQueued)
			c.seg(ch.req, slo.SegQueue, ch.tTransIn-ch.tQueued)
			ch.req.span.Phase(trace.PhaseQueue, ch.idx, ch.tQueued, ch.tTransIn, "")
		}
		p.Sleep(c.P.BTLBHitTime)
		if plba, prot, ok := c.btlb.lookup(f.idx, ch.lba); ok && !(prot && ch.req.Op == OpWrite) {
			c.BTLBStats.Hit()
			ch.tag = trace.TagHit
			ch.lba = plba
			c.pushPLBA(p, f, ch)
			continue
		}
		// A write hitting a cached protected extent cannot use the
		// translation: it falls through to the walk, which re-finds the
		// protected mapping and raises the CoW fault.
		c.BTLBStats.Miss()
		ch.tag = trace.TagWalk

	walk:
		for {
			res, err := c.walkTree(p, f, ch.lba, nodeImg)
			if err != nil {
				c.completeChunk(p, ch, StatusDMAFault)
				break walk
			}
			cowFault := res.Mapped && res.Protected && ch.req.Op == OpWrite
			switch {
			case res.Mapped && !cowFault:
				c.btlb.insert(f.idx, res.Extent)
				ch.lba = res.PLBA
				c.pushPLBA(p, f, ch)
				break walk
			case res.Hole && ch.req.Op == OpRead && !f.fetchBacked:
				// POSIX: holes read as zeros (paper Fig. 5a "DMA zero
				// blocks"). On a fetch-backed VF a hole is unmaterialized
				// content, not zeros — fall through to the miss path so the
				// hypervisor fetches the chunk from the cas tier.
				ch.zero = true
				c.pushPLBA(p, f, ch)
				break walk
			default:
				// Hole on a write, a pruned subtree on either op, a write
				// hitting a write-protected (CoW shared) extent, or any hole
				// on a fetch-backed VF: the hypervisor must
				// allocate/regenerate/unshare/materialize mappings.
				c.Misses++
				ch.tag = trace.TagMiss
				if cowFault {
					c.CowFaults++
					ch.tag = trace.TagCow
				}
				if !f.missPending {
					f.missPending = true
					f.missGen++
					f.missAddr = ch.lba
					f.missSize = 1
					f.missIsWrite = ch.req.Op == OpWrite
					f.missReason = MissReasonTranslate
					if res.Hole && f.fetchBacked {
						f.missReason = MissReasonFetch
					}
					if cowFault {
						f.missReason = MissReasonCoW
					}
					f.rewalk = sim.NewSignal(c.Eng)
					c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindMiss, Fn: f.idx, LBA: ch.lba, Arg: uint64(f.missReason)})
					c.Fab.RaiseMSI(c.pf.id, VecMiss)
					if c.P.MissResendInterval > 0 {
						c.scheduleMissResend(f, f.missGen)
					}
				}
				sig := f.rewalk
				sig.Await(p)
				c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindRewalk, Fn: f.idx, LBA: ch.lba, Arg: uint64(f.rewalkVerdict)})
				if ch.req.epoch != f.resetEpoch {
					c.completeChunk(p, ch, StatusAborted)
					break walk
				}
				if f.rewalkVerdict == RewalkFail {
					c.completeChunk(p, ch, StatusNoSpace)
					break walk
				}
				continue walk // retry against the rebuilt tree
			}
		}
	}
}

// walkTree performs one tree walk using device DMA, mirroring
// extent.Lookup but with the cost model applied.
func (c *Controller) walkTree(p *sim.Proc, f *Function, vlba uint64, nodeImg []byte) (extent.Resolution, error) {
	var res extent.Resolution
	addr := f.treeRoot
	for {
		if err := c.dmaReadP(p, c.pf.id, addr, nodeImg); err != nil {
			return res, err
		}
		c.WalkNodeReads++
		p.Sleep(c.P.WalkParseTime)
		node, err := extent.ParseNode(nodeImg)
		if err != nil {
			return res, err
		}
		res.Levels++
		e, ok := node.Find(vlba)
		if !ok {
			res.Hole = true
			return res, nil
		}
		if node.Leaf() {
			res.Mapped = true
			res.Extent = extent.Run{Logical: e.FirstLogical, Physical: e.Ptr, Count: uint64(e.Count), Flags: e.Flags}
			res.Protected = e.Flags&extent.FlagProtected != 0
			res.PLBA = e.Ptr + (vlba - e.FirstLogical)
			return res, nil
		}
		if e.Ptr == 0 {
			res.Pruned = true
			return res, nil
		}
		addr = int64(e.Ptr)
	}
}

// pushPLBA hands a translated chunk to the data-transfer stage's per-VF
// queue.
func (c *Controller) pushPLBA(p *sim.Proc, f *Function, ch *chunk) {
	if ch.req.obs {
		ch.tTransOut = p.Now()
		if c.P.CollectBreakdown {
			c.Breakdown.Translate.Add((ch.tTransOut - ch.tTransIn).Micros())
		}
		c.observe(translateFamily(ch.tag), ch.req, ch.tTransOut-ch.tTransIn)
		c.seg(ch.req, slo.SegTranslate, ch.tTransOut-ch.tTransIn)
		ch.req.span.Phase(trace.PhaseTransIn, ch.idx, ch.tTransIn, ch.tTransOut, ch.tag)
	}
	c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindTranslate, Fn: f.idx, LBA: ch.lba, Arg: uint64(ch.req.ID)})
	if ch.req.Op == OpVerify {
		c.scrubQ.Push(p, ch)
	} else {
		f.plbaQ.Push(p, ch)
		c.dtuNote(f)
	}
	c.dtuW.Release()
}

// dtuPick selects the next chunk for a DMA channel: OOB (PF) chunks win
// absolute priority; VF chunks are scheduled with deficit round robin
// weighted by each VF's QoS weight (paper §IV-D: the QoS policy lives in
// the DMA engine), walking the DTU's active-VF work list.
func (c *Controller) dtuPick() (*chunk, bool) {
	if ch, ok := c.oobQ.TryPop(); ok {
		return ch, true
	}
	for pass := 0; pass < 2; pass++ {
		b := c.pickActive(c.dtuActive, &c.dtuRR, func(i int) bool {
			f := c.vfAt(i)
			return f != nil && f.dtuCredit > 0
		})
		if b >= 0 {
			f := c.vfAt(b)
			ch, _ := f.plbaQ.TryPop()
			f.dtuCredit--
			if f.plbaQ.Len() == 0 {
				clearBit(c.dtuActive, b)
			}
			return ch, true
		}
		// Every backlogged VF is out of credit: new scheduling round.
		c.dtuRefill()
	}
	// Scrub traffic is served only when every foreground queue is empty.
	if ch, ok := c.scrubQ.TryPop(); ok {
		return ch, true
	}
	return nil, false
}

// dtuLoop is one data-transfer unit channel.
func (c *Controller) dtuLoop(p *sim.Proc) {
	bs := c.P.BlockSize
	buf := make([]byte, bs)
	for {
		c.dtuW.Acquire(p)
		ch, ok := c.dtuPick()
		if !ok {
			continue // defensive; semaphore and queues are kept in lockstep
		}
		if ch.req.epoch != ch.req.fn.resetEpoch {
			c.completeChunk(p, ch, StatusAborted)
			continue
		}
		if expired(ch.req, p.Now()) {
			// Budget spent before the transfer even started: skip the medium
			// entirely. Any sibling chunks that did land are harmless — busy
			// completions are never acknowledged, and the retried write
			// rewrites every block.
			c.DeadlineExpirations++
			c.noteDeadline(p.Now(), ch.req, "dtu")
			c.completeChunk(p, ch, StatusBusy)
			continue
		}
		tSvc := p.Now()
		if ch.req.obs {
			ch.tDTUIn = p.Now()
			if ch.tTransOut != 0 { // OOB chunks skip translation
				if c.P.CollectBreakdown {
					c.Breakdown.DTUWait.Add((ch.tDTUIn - ch.tTransOut).Micros())
				}
				c.observe(mDTUWaitNs, ch.req, ch.tDTUIn-ch.tTransOut)
				c.seg(ch.req, slo.SegDTUWait, ch.tDTUIn-ch.tTransOut)
				ch.req.span.Phase(trace.PhaseDTUWait, ch.idx, ch.tTransOut, ch.tDTUIn, "")
			}
		}
		p.Sleep(c.P.DTUChunkOverhead)
		status := uint32(StatusOK)
		switch {
		case ch.req.Op == OpVerify:
			c.ScrubChunks++
			if !ch.zero { // a hole has no media blocks to check
				status = c.verifyChunk(p, ch, buf)
			}
		case ch.req.Op == OpRead && ch.zero:
			if ch.req.pi {
				ch.req.piAccum ^= c.zeroCRC
			}
			if err := c.dmaZeroP(p, ch.req.fn.id, ch.buf, int64(bs)); err != nil {
				status = StatusDMAFault
			}
		case ch.req.Op == OpRead:
			if st := c.mediumOp(p, ch, buf, false); st != StatusOK {
				status = st
			} else {
				if ch.req.pi {
					ch.req.piAccum ^= ring.BlockCRC(buf)
				}
				// A DMA flip here corrupts the payload after the device
				// computed its guard — exactly what end-to-end PI catches.
				c.maybeCorruptDMA(ch, buf)
				if err := c.dmaWriteP(p, ch.req.fn.id, ch.buf, buf); err != nil {
					status = StatusDMAFault
				}
			}
		default: // OpWrite
			if err := c.dmaReadP(p, ch.req.fn.id, ch.buf, buf); err != nil {
				status = StatusDMAFault
			} else {
				// A DMA flip here lands corrupted data on the medium under a
				// matching medium guard; only the request-level PI check at
				// completion time can see it.
				c.maybeCorruptDMA(ch, buf)
				if ch.req.pi {
					ch.req.piAccum ^= ring.BlockCRC(buf)
				}
				if st := c.mediumOp(p, ch, buf, true); st != StatusOK {
					status = st
				}
			}
		}
		// Feed the chunk-service EWMA (integer arithmetic on timestamps the
		// loop already took; alpha = 1/8). The admission gate multiplies it
		// by a function's backlog for deadline feasibility.
		if svc := p.Now() - tSvc; c.chunkEWMA == 0 {
			c.chunkEWMA = svc
		} else {
			c.chunkEWMA += (svc - c.chunkEWMA) / 8
		}
		c.ChunksDone++
		kind := trace.KindTransfer
		if ch.req.Op == OpVerify {
			kind = trace.KindVerify
		}
		if ch.req.obs {
			now := p.Now()
			if c.P.CollectBreakdown {
				c.Breakdown.Transfer.Add((now - ch.tDTUIn).Micros())
			}
			phase, fam := trace.PhaseTransfer, mTransferNs
			if ch.req.Op == OpVerify {
				phase, fam = trace.PhaseVerify, mVerifyNs
			}
			c.observe(fam, ch.req, now-ch.tDTUIn)
			c.seg(ch.req, slo.SegMedium, now-ch.tDTUIn)
			ch.req.span.Phase(phase, ch.idx, ch.tDTUIn, now, "")
		}
		c.Tracer.Emit(trace.Event{At: p.Now(), Kind: kind, Fn: ch.req.fn.idx, LBA: ch.lba, Arg: uint64(status)})
		c.completeChunk(p, ch, status)
	}
}

// mediumOp performs one chunk's medium access, retrying transient medium
// errors — and guard-tag mismatches, which a re-read of a transiently
// flipped sector heals — up to MediumRetryMax with a per-retry latency cost
// before latching StatusMediumError or StatusIntegrityError. A non-medium
// failure (range/programming) maps to StatusOutOfRange as before.
func (c *Controller) mediumOp(p *sim.Proc, ch *chunk, buf []byte, write bool) uint32 {
	f := ch.req.fn
	sawIntegrity := false
	for attempt := 0; ; attempt++ {
		var err error
		if write {
			err = c.Medium.WriteP(p, int64(ch.lba), buf)
		} else {
			err = c.Medium.ReadP(p, int64(ch.lba), buf)
		}
		if err == nil {
			if sawIntegrity {
				// An earlier attempt failed its guard check and this re-read
				// came back clean: the flip was transient.
				f.IntegrityRepairs++
				c.IntegrityRepairs++
			}
			return StatusOK
		}
		integrity := blockdev.IsIntegrityError(err)
		if !integrity && !blockdev.IsMediumError(err) {
			return StatusOutOfRange
		}
		sawIntegrity = sawIntegrity || integrity
		c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindFault, Fn: f.idx, LBA: ch.lba, Arg: uint64(ch.req.ID)})
		if attempt >= c.P.MediumRetryMax {
			if integrity {
				f.IntegrityErrors++
				c.IntegrityErrors++
				return StatusIntegrityError
			}
			f.MediumErrors++
			c.MediumErrors++
			return StatusMediumError
		}
		f.MediumRetries++
		c.MediumRetries++
		c.noteRetry(ch.req)
		p.Sleep(c.P.MediumRetryDelay)
	}
}

// noteRetry attributes one retry round to the request's telemetry.
func (c *Controller) noteRetry(r *Request) {
	r.retries++
	if r.span != nil {
		r.span.Retries++
	}
	if c.Metrics != nil {
		c.Metrics.Counter(mMediumRetryTot, familyHelp[mMediumRetryTot], reqLabels(r)).Inc()
	}
}

// verifyChunk is the DTU's scrub path: read the block with guard checking
// and, when the fast-path read keeps coming back bad (unreadable latent
// sector or latched corruption), reconstruct the true contents through the
// medium's slow recovery read and rewrite them — which clears the underlying
// defect. Foreground traffic never waits on this: verify chunks are only
// picked when every other queue is empty.
func (c *Controller) verifyChunk(p *sim.Proc, ch *chunk, buf []byte) uint32 {
	f := ch.req.fn
	err := c.Medium.ReadP(p, int64(ch.lba), buf)
	if err == nil {
		return StatusOK
	}
	if !blockdev.IsMediumError(err) && !blockdev.IsIntegrityError(err) {
		return StatusOutOfRange
	}
	c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindFault, Fn: f.idx, LBA: ch.lba, Arg: uint64(ch.req.ID)})
	if e := c.Medium.RecoverP(p, int64(ch.lba), buf); e != nil {
		return StatusOutOfRange
	}
	for attempt := 0; ; attempt++ {
		e := c.Medium.WriteP(p, int64(ch.lba), buf)
		if e == nil {
			f.IntegrityRepairs++
			c.IntegrityRepairs++
			return StatusOK
		}
		if !blockdev.IsMediumError(e) {
			return StatusOutOfRange
		}
		if attempt >= c.P.MediumRetryMax {
			f.MediumErrors++
			c.MediumErrors++
			return StatusMediumError
		}
		f.MediumRetries++
		c.MediumRetries++
		c.noteRetry(ch.req)
		p.Sleep(c.P.MediumRetryDelay)
	}
}

// maybeCorruptDMA consults the DMACorrupt fault site and, when it fires,
// flips one payload bit in flight — silently, exactly like a bad cable or a
// bridge with flaky SRAM would.
func (c *Controller) maybeCorruptDMA(ch *chunk, buf []byte) {
	if c.Inj.Decide(fault.DMACorrupt).Fault {
		fault.Flip(buf, uint64(ch.lba)^(uint64(ch.req.ID)<<20))
	}
}

// scheduleMissResend re-raises the miss MSI while f's miss stays latched —
// the recovery path for a miss interrupt dropped on the wire. The generation
// guard makes a stale timer (miss already serviced, possibly re-latched) a
// no-op.
func (c *Controller) scheduleMissResend(f *Function, gen uint64) {
	c.Eng.After(c.P.MissResendInterval, func() {
		if !f.missPending || f.missGen != gen {
			return
		}
		c.MissResends++
		c.Fab.RaiseMSI(c.pf.id, VecMiss)
		c.scheduleMissResend(f, gen)
	})
}

// completeChunk retires one chunk; the final chunk of a request triggers the
// completion write and interrupt.
func (c *Controller) completeChunk(p *sim.Proc, ch *chunk, status uint32) {
	r := ch.req
	switch status {
	case StatusDMAFault:
		r.fn.DMAFaults++
		c.DMAFaults++
	case StatusAborted:
		c.AbortedChunks++
	}
	if status != StatusOK && r.status == StatusOK {
		r.status = status
	}
	r.left--
	if r.left == 0 {
		c.sendCompletion(p, r)
	}
}

// sendCompletion DMA-writes the completion entry into the originating
// queue's completion ring and raises that queue's completion MSI vector.
func (c *Controller) sendCompletion(p *sim.Proc, r *Request) {
	f := r.fn
	q := r.q
	c.ReqsDone++
	if f.inflight > 0 {
		f.inflight--
	}
	if r.admitted {
		f.pendingChunks -= int64(r.Count)
	}
	if r.pi && r.Op == OpWrite && r.status == StatusOK && r.piAccum != r.piGuard {
		// The device's accumulated guard disagrees with what the submitter
		// computed over the source buffer: the payload was corrupted between
		// the submitter's memory and the medium (e.g. a DMA flip). The data
		// is already on the medium under a self-consistent medium guard, so
		// this end-to-end check is the only detector; fail the request so
		// the driver rewrites.
		r.status = StatusIntegrityError
		f.IntegrityErrors++
		c.IntegrityErrors++
	}
	if c.Metrics != nil {
		l := reqLabels(r)
		c.Metrics.Counter(mRequestsTotal, familyHelp[mRequestsTotal], l).Inc()
		if r.status != StatusOK {
			c.Metrics.Counter(mRequestErrors, familyHelp[mRequestErrors], l).Inc()
		}
		c.Metrics.Histogram(mRequestNs, familyHelp[mRequestNs], l).Observe(int64(p.Now() - r.t0))
	}
	c.Spans.Finish(r.span, p.Now(), r.status)
	if c.SLO != nil {
		c.SLO.Observe(f.idx, p.Now(), p.Now()-r.t0, r.status == StatusOK, r.ReqID)
	}
	if c.Attrib != nil {
		c.finishAttribution(r, p.Now())
	}
	if r.status != StatusOK && r.status != StatusBusy {
		// Terminal error: snapshot the event-ring tail and this request's
		// span for post-mortem retrieval through the PF. Busy is exempt —
		// it is backpressure, not a fault, and under sustained admission
		// pressure it would flush every real error out of the buffer.
		c.captureFlight(p.Now(), f.idx, r, "completion-error")
		if c.Board != nil {
			c.Board.Emit(slo.Event{At: p.Now(), Kind: slo.EventRequestError,
				Dev: c.P.DeviceID, VF: f.idx, ReqID: r.ReqID, Value: float64(r.status)})
		}
	}
	c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindComplete, Fn: f.idx, LBA: r.LBA, Arg: uint64(r.status)})
	if q == nil || q.cplBase == 0 || q.ringSize == 0 {
		return // no completion ring programmed (management-only function)
	}
	if q.f != f || q.gen != r.qGen {
		// The queue pair was returned to the pool (and possibly re-leased,
		// even to a different function) while this request was in flight: its
		// completion ring now belongs to someone else. Drop the completion —
		// the old tenant is gone and the new one must never see foreign DMA.
		return
	}
	q.cplSeq++
	var guard uint32
	if r.pi && r.Op == OpRead && r.status == StatusOK {
		guard = r.piAccum
	}
	entry := make([]byte, CplBytes)
	ring.EncodeCompletionPI(entry, r.ID, r.status, q.cplSeq, guard)
	if err := c.dmaWriteP(p, c.pf.id, ring.CplSlot(q.cplBase, q.cplSeq, q.ringSize), entry); err != nil {
		// The completion entry never reached host memory: the guest will
		// only learn of this request through its timeout path.
		f.CplDrops++
		c.CplDrops++
		c.Tracer.Emit(trace.Event{At: p.Now(), Kind: trace.KindDrop, Fn: f.idx, LBA: r.LBA, Arg: uint64(r.ID)})
		return
	}
	c.Fab.RaiseMSI(f.id, CompletionVector(q.idx))
}

// Process-style DMA helpers that surface errors instead of deadlocking.

func (c *Controller) dmaReadP(p *sim.Proc, id pcie.FnID, addr int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		err = c.Fab.DMARead(id, addr, buf, done)
		if err != nil {
			done()
		}
	})
	return err
}

func (c *Controller) dmaWriteP(p *sim.Proc, id pcie.FnID, addr int64, buf []byte) error {
	var err error
	p.Wait(func(done func()) {
		err = c.Fab.DMAWrite(id, addr, buf, done)
		if err != nil {
			done()
		}
	})
	return err
}

func (c *Controller) dmaZeroP(p *sim.Proc, id pcie.FnID, addr, n int64) error {
	var err error
	p.Wait(func(done func()) {
		err = c.Fab.DMAZero(id, addr, n, done)
		if err != nil {
			done()
		}
	})
	return err
}
