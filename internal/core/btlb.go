package core

import "nesc/internal/extent"

// btlb is the block translation lookaside buffer (paper §V-B): a small
// fully-associative cache of recently used extents with FIFO replacement.
// With the paper's 8 entries it can hold "at least the last mapping for
// each of the last 8 VFs it serviced". An entry caches a whole extent, so
// one fill covers every block of the extent — the source of the high hit
// rates on sequential workloads.
type btlb struct {
	entries []btlbEntry
	next    int // FIFO replacement cursor
}

type btlbEntry struct {
	valid bool
	fnIdx int
	run   extent.Run // vLBA range -> pLBA base
}

func newBTLB(n int) *btlb {
	if n < 0 {
		n = 0
	}
	return &btlb{entries: make([]btlbEntry, n)}
}

// lookup translates vlba for function fnIdx, reporting a miss when no valid
// entry covers it. protected reports whether the covering extent is marked
// write-protected (CoW shared): a write hitting such an entry must take the
// fault path instead of using the cached translation.
func (b *btlb) lookup(fnIdx int, vlba uint64) (plba uint64, protected, ok bool) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.fnIdx == fnIdx && vlba >= e.run.Logical && vlba < e.run.End() {
			return e.run.Physical + (vlba - e.run.Logical), e.run.Protected(), true
		}
	}
	return 0, false, false
}

// insert caches an extent, evicting the oldest entry.
func (b *btlb) insert(fnIdx int, run extent.Run) {
	if len(b.entries) == 0 {
		return
	}
	// Avoid duplicate entries for the same extent.
	for i := range b.entries {
		e := &b.entries[i]
		if e.valid && e.fnIdx == fnIdx && e.run == run {
			return
		}
	}
	b.entries[b.next] = btlbEntry{valid: true, fnIdx: fnIdx, run: run}
	b.next = (b.next + 1) % len(b.entries)
}

// flush invalidates everything (PF BTLBFlush register, used around host-side
// block-level optimizations like deduplication).
func (b *btlb) flush() {
	for i := range b.entries {
		b.entries[i].valid = false
	}
}

// flushFn invalidates a single function's entries (VF teardown).
func (b *btlb) flushFn(fnIdx int) {
	for i := range b.entries {
		if b.entries[i].fnIdx == fnIdx {
			b.entries[i].valid = false
		}
	}
}

// invalidateRange invalidates a function's entries overlapping the vLBA
// range [vlba, vlba+count). The hypervisor issues this after a CoW break so
// stale protected (or stale-translation) entries cannot serve the retried
// write; count 0 degenerates to flushFn. Returns entries invalidated.
func (b *btlb) invalidateRange(fnIdx int, vlba, count uint64) int {
	n := 0
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || e.fnIdx != fnIdx {
			continue
		}
		if count == 0 || (vlba < e.run.End() && e.run.Logical < vlba+count) {
			e.valid = false
			n++
		}
	}
	return n
}
