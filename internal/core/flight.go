package core

import (
	"fmt"
	"io"

	"nesc/internal/sim"
	"nesc/internal/trace"
)

// Flight recorder: when a request retires with a terminal error status — a
// medium error that exhausted retries, an integrity mismatch, a DMA fault, an
// abort from a function-level reset — the controller snapshots the tail of
// the device event ring plus the offending request's span into a small
// diagnostics ring. The hypervisor reads the record count through
// PFRegFlightRecords and pulls the dump off the device model directly
// (nescctl -flight); like a real controller's crash log, the buffer survives
// the error and costs nothing on the happy path (one status compare per
// completion). Capture reads the simulated clock but never advances it.

// FlightRecord is one captured error context.
type FlightRecord struct {
	Seq    int64    // 1-based capture sequence number
	At     sim.Time // capture time
	Reason string   // "completion-error" or "reset"
	Dev    int      // capturing controller's device ID within the fabric

	// Offending request (zeroed for reason "reset", which is not
	// request-scoped). ReqID is the controller-assigned causal request id —
	// the cross-link key scoreboard events and spans carry too.
	Fn     int
	Q      int
	Op     string
	ID     uint32
	ReqID  uint64
	LBA    uint64
	Count  uint32
	Status uint32

	// Events is the tail of the device event ring at capture time.
	Events []trace.Event
	// Span is the offending request's span (nil when span recording is off
	// or the record is not request-scoped).
	Span *trace.Span
}

// FlightRecorder retains the last few FlightRecords in a ring. A nil
// *FlightRecorder is a valid disabled recorder. The record buffer itself is
// allocated lazily on the first capture — an error-free device (or one of a
// thousand idle ones) carries only the header.
type FlightRecorder struct {
	recs    []FlightRecord
	size    int // buffer capacity, allocated on first capture
	next    int
	wrapped bool
	evTail  int
	// Total counts all records ever captured (including overwritten ones);
	// PFRegFlightRecords exposes it.
	Total int64
}

// NewFlightRecorder returns a recorder holding the last records captures,
// each carrying up to eventTail trailing ring events.
func NewFlightRecorder(records, eventTail int) *FlightRecorder {
	if records < 1 {
		records = 1
	}
	return &FlightRecorder{size: records, evTail: eventTail}
}

// capture stores one record, snapshotting the event ring's tail. Safe on a
// nil receiver.
func (fr *FlightRecorder) capture(rec FlightRecord, ring *trace.Ring) {
	if fr == nil {
		return
	}
	if fr.recs == nil {
		fr.recs = make([]FlightRecord, fr.size)
	}
	if fr.evTail > 0 {
		evs := ring.Events()
		if len(evs) > fr.evTail {
			evs = evs[len(evs)-fr.evTail:]
		}
		rec.Events = evs
	}
	fr.Total++
	rec.Seq = fr.Total
	fr.recs[fr.next] = rec
	fr.next++
	if fr.next == len(fr.recs) {
		fr.next = 0
		fr.wrapped = true
	}
}

// Records returns the held records in capture order.
func (fr *FlightRecorder) Records() []FlightRecord {
	if fr == nil {
		return nil
	}
	if !fr.wrapped {
		return append([]FlightRecord(nil), fr.recs[:fr.next]...)
	}
	out := make([]FlightRecord, 0, len(fr.recs))
	out = append(out, fr.recs[fr.next:]...)
	out = append(out, fr.recs[:fr.next]...)
	return out
}

// Dump writes the held records human-readably, newest last.
func (fr *FlightRecorder) Dump(w io.Writer) error {
	recs := fr.Records()
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no records")
		return err
	}
	for _, rec := range recs {
		if _, err := fmt.Fprintf(w, "=== flight record %d: %s at %v ===\n", rec.Seq, rec.Reason, rec.At); err != nil {
			return err
		}
		dev := ""
		if rec.Dev != 0 {
			dev = fmt.Sprintf("dev=%d ", rec.Dev)
		}
		if rec.Reason != "reset" {
			req := ""
			if rec.ReqID != 0 {
				req = fmt.Sprintf(" req=%d", rec.ReqID)
			}
			fmt.Fprintf(w, "%sfn=%d q=%d op=%s id=%d%s lba=%d n=%d status=%d\n",
				dev, rec.Fn, rec.Q, rec.Op, rec.ID, req, rec.LBA, rec.Count, rec.Status)
		} else {
			fmt.Fprintf(w, "%sfn=%d\n", dev, rec.Fn)
		}
		if s := rec.Span; s != nil {
			fmt.Fprintf(w, "span: start=%v end=%v retries=%d phases=%d\n", s.Start, s.End, s.Retries, len(s.Phases))
			for _, ph := range s.Phases {
				tag := ""
				if ph.Tag != "" {
					tag = "(" + ph.Tag + ")"
				}
				fmt.Fprintf(w, "  %-10s chunk=%-3d [%v .. %v] %v\n", ph.Name+tag, ph.Chunk, ph.Start, ph.End, ph.End-ph.Start)
			}
		}
		if len(rec.Events) > 0 {
			fmt.Fprintf(w, "last %d device events:\n", len(rec.Events))
			for _, e := range rec.Events {
				fmt.Fprintf(w, "  %s\n", e.String())
			}
		}
	}
	return nil
}

// captureFlight snapshots error context for a failed request (r non-nil) or
// a function-level reset (r nil, fn the reset function's index).
func (c *Controller) captureFlight(at sim.Time, fn int, r *Request, reason string) {
	if c.Flight == nil {
		return
	}
	rec := FlightRecord{At: at, Reason: reason, Fn: fn, Dev: c.P.DeviceID}
	if r != nil {
		if r.q != nil {
			rec.Q = r.q.idx
		}
		rec.Op = opName(r.Op)
		rec.ID = r.ID
		rec.ReqID = r.ReqID
		rec.LBA = r.LBA
		rec.Count = r.Count
		rec.Status = r.status
		rec.Span = r.span
	}
	c.Flight.capture(rec, c.Tracer)
}
