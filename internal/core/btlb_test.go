package core

import (
	"testing"

	"nesc/internal/extent"
)

// Direct unit tests for the BTLB's invalidation primitives: the global
// flush (PF BTLBFlush register), the per-function flush (VF teardown), and
// the ranged invalidation the hypervisor issues after a CoW break.

func filledBTLB() *btlb {
	b := newBTLB(8)
	b.insert(1, extent.Run{Logical: 0, Physical: 100, Count: 10})
	b.insert(1, extent.Run{Logical: 50, Physical: 500, Count: 10})
	b.insert(2, extent.Run{Logical: 0, Physical: 900, Count: 10})
	return b
}

func hit(b *btlb, fn int, vlba uint64) bool {
	_, _, ok := b.lookup(fn, vlba)
	return ok
}

func TestBTLBFlushClearsAllFunctions(t *testing.T) {
	b := filledBTLB()
	b.flush()
	for _, c := range []struct {
		fn   int
		vlba uint64
	}{{1, 0}, {1, 55}, {2, 5}} {
		if hit(b, c.fn, c.vlba) {
			t.Fatalf("fn %d vlba %d survived flush", c.fn, c.vlba)
		}
	}
	// The cache still works after a flush.
	b.insert(3, extent.Run{Logical: 7, Physical: 70, Count: 1})
	if !hit(b, 3, 7) {
		t.Fatal("insert after flush missed")
	}
}

func TestBTLBFlushFnSparesOtherFunctions(t *testing.T) {
	b := filledBTLB()
	b.flushFn(1)
	if hit(b, 1, 0) || hit(b, 1, 55) {
		t.Fatal("flushFn left the function's entries")
	}
	if !hit(b, 2, 5) {
		t.Fatal("flushFn clobbered another function")
	}
}

func TestBTLBInvalidateRangeIsTargeted(t *testing.T) {
	b := filledBTLB()
	// [5, 7) overlaps only fn 1's first extent.
	if n := b.invalidateRange(1, 5, 2); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	if hit(b, 1, 0) {
		t.Fatal("overlapped entry survived")
	}
	if !hit(b, 1, 55) {
		t.Fatal("non-overlapping entry of same fn dropped")
	}
	if !hit(b, 2, 5) {
		t.Fatal("other function's entry dropped")
	}
	// A disjoint range invalidates nothing.
	if n := b.invalidateRange(1, 200, 50); n != 0 {
		t.Fatalf("disjoint range invalidated %d entries", n)
	}
	// Boundary: range ending exactly at an extent start does not overlap it.
	if n := b.invalidateRange(1, 40, 10); n != 0 {
		t.Fatalf("touching-but-disjoint range invalidated %d entries", n)
	}
	// Count 0 degenerates to a whole-function flush.
	if n := b.invalidateRange(1, 0, 0); n != 1 {
		t.Fatalf("count-0 invalidation cleared %d entries, want the remaining 1", n)
	}
	if hit(b, 1, 55) {
		t.Fatal("count-0 invalidation left an entry")
	}
	if !hit(b, 2, 5) {
		t.Fatal("count-0 invalidation crossed functions")
	}
}

func TestBTLBLookupReportsProtection(t *testing.T) {
	b := newBTLB(2)
	b.insert(1, extent.Run{Logical: 0, Physical: 10, Count: 4, Flags: extent.FlagProtected})
	b.insert(1, extent.Run{Logical: 4, Physical: 20, Count: 4})
	if _, prot, ok := b.lookup(1, 2); !ok || !prot {
		t.Fatalf("protected extent lookup = prot %v, ok %v", prot, ok)
	}
	if _, prot, ok := b.lookup(1, 6); !ok || prot {
		t.Fatalf("plain extent lookup = prot %v, ok %v", prot, ok)
	}
}
