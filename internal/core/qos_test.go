package core

import (
	"testing"

	"nesc/internal/extent"
	"nesc/internal/sim"
	"nesc/internal/trace"
)

func TestWeightRegisterClamping(t *testing.T) {
	r := newRig(t, smallParams())
	done := false
	r.eng.Go("hyp", func(p *sim.Proc) {
		mgmt := r.bar + r.ctl.MgmtPageOffset()
		vf := r.ctl.VF(0)
		if vf.weight != 1 {
			t.Errorf("default weight = %d", vf.weight)
		}
		r.mmioW(p, mgmt+MgmtWeight, 8)
		// Posted write: the read round trip orders behind it.
		if got := r.mmioR(p, mgmt+MgmtWeight); got != 8 {
			t.Errorf("weight readback = %d", got)
		}
		// Out-of-range values are ignored.
		r.mmioW(p, mgmt+MgmtWeight, 0)
		r.mmioW(p, mgmt+MgmtWeight, 1000)
		if got := r.mmioR(p, mgmt+MgmtWeight); got != 8 {
			t.Errorf("weight after invalid writes = %d", got)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

// fillPLBAQueues stuffs n chunks into each of the first two VFs' pLBA
// queues and joins them to the DTU's active list (unit-level access; QoS
// binds only under backlog, which queue-depth-1 clients never create).
func fillPLBAQueues(c *Controller, n int) {
	for i := 0; i < 2; i++ {
		f := c.VF(i)
		req := &Request{fn: f, Op: OpWrite, left: n}
		for k := 0; k < n; k++ {
			if !f.plbaQ.TryPush(&chunk{req: req, lba: uint64(k)}) {
				panic("queue full in test setup")
			}
		}
		c.dtuNote(f)
	}
}

func TestDTUPickWeightedScheduling(t *testing.T) {
	p := smallParams()
	p.PLBAQueueDepth = 256
	r := newRig(t, p)
	c := r.ctl
	c.VF(0).weight = 6
	c.VF(1).weight = 1
	fillPLBAQueues(c, 140)
	var picks [2]int
	for i := 0; i < 140; i++ {
		ch, ok := c.dtuPick()
		if !ok {
			t.Fatalf("pick %d failed with backlog present", i)
		}
		picks[ch.req.fn.idx-1]++
	}
	// 140 picks at 6:1 → 120:20.
	if picks[0] != 120 || picks[1] != 20 {
		t.Fatalf("picks = %v, want [120 20]", picks)
	}
	// Work conservation: once VF0 drains, VF1 gets everything.
	for c.VF(0).plbaQ.Len() > 0 {
		c.dtuPick()
	}
	before := c.VF(1).plbaQ.Len()
	if before == 0 {
		t.Fatal("VF1 queue already empty")
	}
	if ch, ok := c.dtuPick(); !ok || ch.req.fn.idx != 2 {
		t.Fatal("scheduler not work-conserving after VF0 drained")
	}
}

func TestDTUPickEqualWeightsAlternate(t *testing.T) {
	p := smallParams()
	p.PLBAQueueDepth = 64
	r := newRig(t, p)
	c := r.ctl
	fillPLBAQueues(c, 32)
	var picks [2]int
	for i := 0; i < 64; i++ {
		ch, ok := c.dtuPick()
		if !ok {
			t.Fatalf("pick %d failed", i)
		}
		picks[ch.req.fn.idx-1]++
	}
	if picks[0] != 32 || picks[1] != 32 {
		t.Fatalf("equal weights picked %v", picks)
	}
}

func TestDTUPickOOBPriority(t *testing.T) {
	r := newRig(t, smallParams())
	c := r.ctl
	fillPLBAQueues(c, 4)
	pfReq := &Request{fn: c.pf, Op: OpRead, left: 1}
	c.oobQ.TryPush(&chunk{req: pfReq})
	ch, ok := c.dtuPick()
	if !ok || ch.req.fn != c.pf {
		t.Fatal("OOB chunk did not win priority")
	}
}

func TestBreakdownCollection(t *testing.T) {
	p := smallParams()
	p.CollectBreakdown = true
	r := newRig(t, p)
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 256}})
	buf := r.mem.MustAlloc(4096, 64)
	done := false
	r.eng.Go("guest", func(pr *sim.Proc) {
		r.setVF(pr, 0, tr.Root(), 256)
		d := r.openFunction(pr, 1)
		for i := 0; i < 8; i++ {
			if st := d.io(pr, OpWrite, uint64(i*4), 4, buf); st != StatusOK {
				t.Errorf("status %d", st)
			}
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
	b := &r.ctl.Breakdown
	if b.QueueWait.N() == 0 || b.Translate.N() == 0 || b.Transfer.N() == 0 {
		t.Fatalf("breakdown samplers empty: %d/%d/%d", b.QueueWait.N(), b.Translate.N(), b.Transfer.N())
	}
	if b.Transfer.Mean() <= 0 {
		t.Fatal("transfer stage recorded no time")
	}
	// Disabled by default: no samples collected.
	r2 := newRig(t, smallParams())
	tr2 := r2.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 16}})
	r2.eng.Go("guest", func(pr *sim.Proc) {
		r2.setVF(pr, 0, tr2.Root(), 16)
		d := r2.openFunction(pr, 1)
		d.io(pr, OpWrite, 0, 4, buf2addr(r2))
	})
	r2.run()
	if r2.ctl.Breakdown.Transfer.N() != 0 {
		t.Fatal("breakdown collected while disabled")
	}
}

func buf2addr(r *rig) int64 { return r.mem.MustAlloc(4096, 64) }

func TestTracerRecordsRequestLifecycle(t *testing.T) {
	r := newRig(t, smallParams())
	r.ctl.Tracer = trace.NewRing(64)
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 16}})
	buf := r.mem.MustAlloc(4096, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 16)
		d := r.openFunction(p, 1)
		if st := d.io(p, OpWrite, 0, 4, buf); st != StatusOK {
			t.Errorf("status %d", st)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
	evs := r.ctl.Tracer.Events()
	var kinds []trace.Kind
	for _, e := range evs {
		if e.Fn == 1 {
			kinds = append(kinds, e.Kind)
		}
	}
	// Lifecycle: fetch, then translations/transfers, then completion last.
	if len(kinds) < 3 || kinds[0] != trace.KindFetch || kinds[len(kinds)-1] != trace.KindComplete {
		t.Fatalf("lifecycle kinds = %v", kinds)
	}
	sawTranslate, sawTransfer := false, false
	for _, k := range kinds {
		if k == trace.KindTranslate {
			sawTranslate = true
		}
		if k == trace.KindTransfer {
			sawTransfer = true
		}
	}
	if !sawTranslate || !sawTransfer {
		t.Fatalf("missing pipeline events: %v", kinds)
	}
	// Timestamps are monotone.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace events out of order")
		}
	}
}
