// Package core implements the NeSC controller — the paper's primary
// contribution: a self-virtualizing, nested storage controller that exposes
// a physical function (PF) to the hypervisor and up to 64 virtual functions
// (VFs) to guests, translating each VF's virtual LBAs to physical LBAs in
// hardware through per-VF extent trees resident in host memory.
//
// The microarchitecture follows the paper's Figures 6–8:
//
//	per-function register files and DMA request/completion rings
//	  → per-VF request queues
//	  → round-robin VF multiplexer (splits requests into 1 KB chunks)
//	  → shared vLBA queue
//	  → translation unit: 8-entry BTLB + block-walk unit that overlaps
//	    two tree walks to hide host-memory DMA latency
//	  → shared pLBA queue
//	  → data-transfer unit (DMA engine channels) touching the medium
//	PF requests use physical LBAs directly and bypass translation through
//	the out-of-band (OOB) channel so a stalled VF walk never blocks the
//	hypervisor (paper §V-A).
//
// Translation misses (lazy allocation, pruned subtrees) park the walk, latch
// MissAddress/MissSize, and interrupt the hypervisor, which allocates
// blocks, rebuilds the tree, and writes RewalkTree to release the walk —
// the read/write flows of Figure 5.
package core

import (
	"fmt"

	"nesc/internal/blockdev"
	"nesc/internal/extent"
	"nesc/internal/fault"
	"nesc/internal/metrics"
	"nesc/internal/pcie"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/stats"
	"nesc/internal/trace"
)

// Params configures the controller geometry and cost model.
type Params struct {
	// NumVFs is the maximum virtual function count (the prototype supports
	// 64).
	NumVFs int
	// BlockSize is the translation granularity in bytes (the paper operates
	// at 1 KB, "the smallest block size supported by ext4").
	BlockSize int
	// RingEntries is the request/completion ring depth per function.
	RingEntries int
	// BTLBEntries sizes the block translation lookaside buffer (8 in the
	// paper: "a small cache of the last 8 extents used in translation").
	BTLBEntries int
	// Walkers is the number of concurrently overlapped tree walks (2 in the
	// paper: "the unit can overlap two translation processes").
	Walkers int
	// DTUChannels is the number of outstanding data-transfer operations the
	// DMA engine sustains.
	DTUChannels int
	// TreeFanout is the extent-tree node fanout the walker expects.
	TreeFanout int
	// QueuesPerVF is the number of queue pairs each function exposes
	// (default 1, the paper's prototype; clamped to MaxQueuesPerFn). The
	// hypervisor may program an individual VF down from this capability
	// through the MgmtQueues management register.
	QueuesPerVF int

	// Queue depths (backpressure points).
	ReqQueueDepth  int
	VLBAQueueDepth int
	PLBAQueueDepth int

	// Cost model.
	DescriptorFetchTime sim.Time // decode cost per fetched descriptor
	MuxChunkTime        sim.Time // per-chunk multiplexer occupancy
	BTLBHitTime         sim.Time // BTLB lookup
	WalkParseTime       sim.Time // node decode after its DMA arrives
	DTUChunkOverhead    sim.Time // per-chunk scatter/gather handling

	// CollectBreakdown enables per-chunk stage timing (the latency
	// breakdown experiment); off by default to keep hot paths lean.
	CollectBreakdown bool

	// Error recovery.
	//
	// MediumRetryMax is how many times the DTU retries a transient medium
	// error before latching StatusMediumError; MediumRetryDelay is the cost
	// of each retry.
	MediumRetryMax   int
	MediumRetryDelay sim.Time
	// MissResendInterval, when positive, re-raises the miss MSI while a
	// function's miss stays latched (recovers a miss interrupt lost on the
	// wire). Zero disables resending and leaves the event queue untouched.
	MissResendInterval sim.Time

	// DeviceID identifies this controller within a multi-device fabric
	// (default 0, the primary). It prefixes the device's PCIe function and
	// pipeline-process names, stamps flight-recorder captures, and keys the
	// injector's device-kill/partition latches at the medium. Device 0 keeps
	// the historical unprefixed names so single-device runs are bit-identical.
	DeviceID int
}

// DefaultParams matches the paper's prototype.
func DefaultParams() Params {
	return Params{
		NumVFs:              64,
		BlockSize:           1024,
		RingEntries:         256,
		BTLBEntries:         8,
		Walkers:             2,
		DTUChannels:         4,
		TreeFanout:          extent.DefaultFanout,
		QueuesPerVF:         1,
		ReqQueueDepth:       64,
		VLBAQueueDepth:      64,
		PLBAQueueDepth:      64,
		DescriptorFetchTime: 100 * sim.Nanosecond,
		MuxChunkTime:        60 * sim.Nanosecond,
		BTLBHitTime:         80 * sim.Nanosecond,
		WalkParseTime:       150 * sim.Nanosecond,
		DTUChunkOverhead:    220 * sim.Nanosecond,
		MediumRetryMax:      3,
		MediumRetryDelay:    2 * sim.Microsecond,
	}
}

// Operation codes in request descriptors (defined by internal/ring).
const (
	OpRead   = ring.OpRead
	OpWrite  = ring.OpWrite
	OpVerify = ring.OpVerify
)

// Completion status codes (defined by internal/ring; StatusDMAFault = 4
// lives in pipeline.go).
const (
	StatusOK             = ring.StatusOK
	StatusOutOfRange     = ring.StatusOutOfRange  // request exceeds the virtual device
	StatusNoSpace        = ring.StatusNoSpace     // hypervisor denied allocation (quota/space)
	StatusDisabled       = ring.StatusDisabled    // function not enabled
	StatusMediumError    = ring.StatusMediumError // medium error persisted through all retries
	StatusAborted        = ring.StatusAborted     // request killed by a function-level reset
	StatusIntegrityError = ring.StatusIntegrityError
)

// MSI vectors raised by the controller. Queue 0's completions keep the
// legacy vector 0; queue q > 0 completes on vector 1+q, skipping the miss
// vector. A function therefore needs 1+numQueues vectors (at least 2).
const (
	VecCompletion = 0 // queue 0 completion (raised from the owning function)
	VecMiss       = 1 // translation miss (always raised from the PF)
)

// CompletionVector reports the MSI vector carrying queue q's completions.
func CompletionVector(q int) uint8 {
	if q == 0 {
		return VecCompletion
	}
	return uint8(1 + q)
}

// QueueOfVector inverts CompletionVector; ok is false for VecMiss (not a
// completion vector).
func QueueOfVector(v uint8) (q int, ok bool) {
	switch {
	case v == VecCompletion:
		return 0, true
	case v == VecMiss:
		return 0, false
	default:
		return int(v) - 1, true
	}
}

// Request is one descriptor fetched from a function's request ring.
type Request struct {
	fn     *Function
	q      *fnQueue // queue the descriptor was fetched from (completion routing)
	Op     uint32   // opcode with flag bits stripped
	ID     uint32
	LBA    uint64 // vLBA for VFs, pLBA for the PF
	Count  uint32 // blocks
	Buf    int64  // host memory address of the data buffer
	status uint32
	left   int    // chunks outstanding
	epoch  uint32 // function reset epoch at fetch time; stale = aborted

	// Protection information (OpFlagPI). piGuard is the submitter's XOR of
	// per-block CRCs from the descriptor; piAccum is the device-side
	// accumulator, XORed per chunk so it is order-independent across DMA
	// channels.
	pi      bool
	piGuard uint32
	piAccum uint32

	// Telemetry. t0 is the virtual time the descriptor fetch began; span is
	// the request's lifecycle record (nil when span recording is off); obs
	// gates chunk stage-timestamping (breakdown collection or any telemetry
	// sink attached).
	t0   sim.Time
	span *trace.Span
	obs  bool
}

// chunk is the unit of translation and data transfer (one block).
type chunk struct {
	req  *Request
	idx  int    // 0-based chunk index within the request
	lba  uint64 // vLBA before translation, pLBA after
	buf  int64
	zero bool // hole read: DMA zeros, skip the medium

	// tag records the translation outcome (trace.TagHit/TagWalk/TagMiss).
	tag string

	// Stage timestamps (only stamped when req.obs).
	tQueued   sim.Time // entered the vLBA queue
	tTransIn  sim.Time // picked up by a walker
	tTransOut sim.Time // translation done, entered the pLBA queue
	tDTUIn    sim.Time // picked up by a DMA channel
}

// Controller is the NeSC device instance.
type Controller struct {
	Eng    *sim.Engine
	Fab    *pcie.Fabric
	Medium *blockdev.Medium
	P      Params

	pf  *Function
	vfs []*Function

	vlbaQ *sim.FIFO[*chunk]
	// plbaQs holds translated chunks per VF; the data-transfer unit drains
	// them with weighted (deficit round robin) scheduling — the QoS hook of
	// paper §IV-D lives in the DMA engine.
	plbaQs []*sim.FIFO[*chunk]
	oobQ   *sim.FIFO[*chunk]
	// scrubQ holds verify (OpVerify) chunks. The DTU drains it only when the
	// OOB and every VF queue are empty — scavenger priority, so background
	// scrubbing provably never delays foreground chunks at the pick point.
	scrubQ *sim.FIFO[*chunk]
	dtuW   *sim.Semaphore // counts items across plbaQs+oobQ+scrubQ
	muxW   *sim.Semaphore // counts requests across all VF request queues
	dtuRR  int            // DTU scheduling cursor

	btlb *btlb

	// Inj, when non-nil, is consulted for DMA payload corruption (the
	// DMACorrupt site); medium-side sites are handled inside the Medium.
	Inj *fault.Injector

	// zeroCRC is the CRC of an all-zero block, accumulated for hole chunks
	// of PI reads.
	zeroCRC uint32

	// Tracer, when non-nil, records device events (nil = zero cost).
	Tracer *trace.Ring

	// Metrics and Spans are the telemetry sinks installed by
	// AttachTelemetry (telemetry.go); both nil-safe and off by default.
	Metrics *metrics.Registry
	Spans   *trace.SpanRecorder

	// Flight is the always-armed error diagnostics buffer (flight.go): on
	// any terminal error completion or reset it snapshots the event-ring
	// tail and the offending request's span.
	Flight *FlightRecorder

	barBase int64
	sriov   pcie.SRIOVCap

	// Stats.
	BTLBStats     stats.Ratio
	WalkNodeReads int64
	Misses        int64
	ChunksDone    int64
	ReqsDone      int64

	// CoW stats: writes that trapped on a write-protected extent, and BTLB
	// entries dropped by the targeted invalidation command.
	CowFaults         int64
	BTLBInvalidations int64

	// Latches for the PF targeted-invalidation command (PFRegInvVLBA/Count).
	invVLBA  uint64
	invCount uint64

	// Error/recovery stats, aggregated across functions.
	FetchDrops    int64 // doorbells lost to descriptor-fetch DMA errors
	CplDrops      int64 // completions lost to completion-ring DMA errors
	MediumErrors  int64 // chunks that exhausted medium retries
	MediumRetries int64 // individual medium retry attempts
	DMAFaults     int64 // chunks failed by data-buffer DMA faults
	FLRs          int64 // function-level resets performed
	AbortedChunks int64 // chunks killed by a reset
	MissResends   int64 // miss MSIs re-raised by the resend timer
	BadRingSizes  int64 // rejected ring-size register writes
	BadDoorbells  int64 // ignored incoherent doorbell writes

	// Integrity stats.
	IntegrityErrors  int64 // requests latched StatusIntegrityError
	IntegrityRepairs int64 // integrity failures healed by retry or scrub rewrite
	ScrubChunks      int64 // verify chunks processed

	// Breakdown holds per-stage chunk latencies in microseconds (populated
	// only when Params.CollectBreakdown is set).
	Breakdown struct {
		QueueWait stats.Sampler // vLBA queue residence
		Translate stats.Sampler // BTLB lookup / tree walk
		DTUWait   stats.Sampler // pLBA queue residence
		Transfer  stats.Sampler // DMA channel service (medium + PCIe)
	}
}

// New builds a controller on the fabric, registers its functions, and starts
// its pipeline processes. The medium is the physical storage behind the PF's
// LBA space.
func New(eng *sim.Engine, fab *pcie.Fabric, medium *blockdev.Medium, p Params) (*Controller, error) {
	if p.BlockSize != medium.Store().BlockSize() {
		return nil, fmt.Errorf("core: controller block size %d != medium block size %d", p.BlockSize, medium.Store().BlockSize())
	}
	if p.QueuesPerVF < 1 {
		p.QueuesPerVF = 1
	}
	if p.QueuesPerVF > MaxQueuesPerFn {
		return nil, fmt.Errorf("core: QueuesPerVF %d exceeds the register-file limit %d", p.QueuesPerVF, MaxQueuesPerFn)
	}
	c := &Controller{
		Eng:    eng,
		Fab:    fab,
		Medium: medium,
		P:      p,
		vlbaQ:  sim.NewFIFO[*chunk](eng, p.VLBAQueueDepth),
		oobQ:   sim.NewFIFO[*chunk](eng, 0),
		scrubQ: sim.NewFIFO[*chunk](eng, 0),
		dtuW:   sim.NewSemaphore(eng, 0),
		muxW:   sim.NewSemaphore(eng, 0),
		btlb:   newBTLB(p.BTLBEntries),
		sriov:  pcie.SRIOVCap{TotalVFs: p.NumVFs},
		Flight: NewFlightRecorder(8, 32),
	}
	c.zeroCRC = ring.BlockCRC(make([]byte, p.BlockSize))
	for i := 0; i < p.NumVFs; i++ {
		c.plbaQs = append(c.plbaQs, sim.NewFIFO[*chunk](eng, p.PLBAQueueDepth))
	}
	medium.SetDeviceIndex(p.DeviceID)
	c.pf = c.newFunction(0, fab.RegisterFunction(c.devName("nesc")+"-pf"))
	c.pf.enabled = true
	c.pf.sizeBlocks = uint64(medium.Store().NumBlocks())
	for i := 1; i <= p.NumVFs; i++ {
		c.vfs = append(c.vfs, c.newFunction(i, fab.RegisterFunction(fmt.Sprintf("%s-vf%d", c.devName("nesc"), i-1))))
	}
	c.barBase = fab.MapBAR(c, c.BARSize())
	// Program each function's MSI capability: one completion vector per
	// queue plus the miss vector (vector 1, raised only from the PF but
	// reserved in every function's numbering).
	nVec := p.QueuesPerVF + 1
	if nVec < 2 {
		nVec = 2
	}
	fab.AllocMSIVectors(c.pf.id, nVec)
	for _, vf := range c.vfs {
		fab.AllocMSIVectors(vf.id, nVec)
	}

	// Pipeline processes.
	eng.Go(c.devName("nesc")+"-mux", c.muxLoop)
	for w := 0; w < p.Walkers; w++ {
		eng.Go(fmt.Sprintf("%s-walker%d", c.devName("nesc"), w), c.walkerLoop)
	}
	for d := 0; d < p.DTUChannels; d++ {
		eng.Go(fmt.Sprintf("%s-dtu%d", c.devName("nesc"), d), c.dtuLoop)
	}
	return c, nil
}

// devName returns base for the primary device and base<ID> for replicas, so
// a multi-device fabric's functions and pipeline processes are tellable
// apart while single-device naming stays exactly historical.
func (c *Controller) devName(base string) string {
	if c.P.DeviceID == 0 {
		return base
	}
	return fmt.Sprintf("%s%d", base, c.P.DeviceID)
}

// DeviceID reports this controller's identity within the device fleet.
func (c *Controller) DeviceID() int { return c.P.DeviceID }

// BARBase reports the device's bus address as enumerated on the fabric.
func (c *Controller) BARBase() int64 { return c.barBase }

// PF returns the physical function.
func (c *Controller) PF() *Function { return c.pf }

// VF returns virtual function idx (0-based).
func (c *Controller) VF(idx int) *Function { return c.vfs[idx] }

// SRIOV exposes the device's SR-IOV capability record.
func (c *Controller) SRIOV() *pcie.SRIOVCap { return &c.sriov }

// Function is one facet of the controller: the PF or a VF. Each has its own
// register file and queue-pair array, exactly as each SR-IOV function has its
// own PCIe identity.
type Function struct {
	c   *Controller
	idx int // 0 = PF, 1..NumVFs = VFs
	id  pcie.FnID

	// Queue pairs (guest-programmable). numQueues is the active count the
	// hypervisor programmed through MgmtQueues; queues beyond it exist in
	// the register file but reject traffic.
	queues    []*fnQueue
	numQueues int
	// fetchW counts pending doorbells across all of the function's queues;
	// fetchRR is the intra-function round-robin cursor of the fetch stage.
	fetchW  *sim.Semaphore
	fetchRR int

	// Hypervisor-programmable management registers.
	enabled    bool
	treeRoot   int64
	sizeBlocks uint64

	// Miss latch (read by the hypervisor on a miss interrupt).
	missAddr      uint64
	missSize      uint32
	missIsWrite   bool
	missReason    uint32 // MissReason* code for the latched miss
	missPending   bool
	missGen       uint64 // bumped per latch; guards the resend timer
	rewalk        *sim.Signal
	rewalkVerdict uint32 // what the hypervisor wrote to RewalkTree

	// Reset state: resetEpoch is bumped by each function-level reset, and
	// requests stamped with an older epoch are aborted at every pipeline
	// stage; inflight counts fetched-but-uncompleted requests, exposed
	// through RegReset so the hypervisor can poll for drain.
	resetEpoch uint32
	inflight   int64

	reqQ *sim.FIFO[*Request]

	// QoS: the multiplexer serves up to `weight` requests — and the DMA
	// engine up to `weight` chunks — per VF per scheduling round (deficit
	// round robin; paper §IV-D "different priorities for each VF").
	weight    uint32
	credit    uint32
	dtuCredit uint32

	// Stats.
	Reqs, Blocks int64

	// AER-style per-function error counters, exposed through the RegErr*
	// registers.
	DMAFaults        int64
	MediumErrors     int64
	MediumRetries    int64
	Resets           int64
	FetchDrops       int64
	CplDrops         int64
	BadRingSizes     int64
	BadDoorbells     int64
	IntegrityErrors  int64
	IntegrityRepairs int64
}

// fnQueue is one of a function's queue pairs: the guest-programmable ring
// registers plus the device-side cursors and doorbell FIFO.
type fnQueue struct {
	f   *Function
	idx int

	ringBase int64
	ringSize uint32
	cplBase  int64
	consumed uint32 // SQ consumer index (device side)
	cplSeq   uint32 // CQ sequence counter

	doorbells *sim.FIFO[uint32]

	// Reqs counts requests fetched from this queue (intra-VF fairness
	// accounting).
	Reqs int64
}

// clear wipes the queue's guest-programmable state and cursors (FLR,
// disable).
func (q *fnQueue) clear() {
	q.ringBase, q.ringSize, q.cplBase = 0, 0, 0
	q.consumed, q.cplSeq = 0, 0
}

func (c *Controller) newFunction(idx int, id pcie.FnID) *Function {
	f := &Function{
		c:      c,
		idx:    idx,
		id:     id,
		fetchW: sim.NewSemaphore(c.Eng, 0),
		reqQ:   sim.NewFIFO[*Request](c.Eng, c.P.ReqQueueDepth),
		rewalk: sim.NewSignal(c.Eng),
		weight: 1,
	}
	for q := 0; q < c.P.QueuesPerVF; q++ {
		f.queues = append(f.queues, &fnQueue{f: f, idx: q, doorbells: sim.NewFIFO[uint32](c.Eng, 0)})
	}
	f.numQueues = len(f.queues)
	c.Eng.Go(fmt.Sprintf("nesc-fetch%d", idx), f.fetchLoop)
	return f
}

// NumQueues reports the function's active queue-pair count.
func (f *Function) NumQueues() int { return f.numQueues }

// QueueReqs reports how many requests were fetched from queue q.
func (f *Function) QueueReqs(q int) int64 { return f.queues[q].Reqs }

// ID reports the function's PCIe routing ID.
func (f *Function) ID() pcie.FnID { return f.id }

// Index reports the function index (0 = PF).
func (f *Function) Index() int { return f.idx }

// Enabled reports whether the function accepts requests.
func (f *Function) Enabled() bool { return f.enabled }

// SizeBlocks reports the virtual device size in blocks.
func (f *Function) SizeBlocks() uint64 { return f.sizeBlocks }

// TreeRoot reports the configured extent tree root (diagnostics).
func (f *Function) TreeRoot() int64 { return f.treeRoot }

// Inflight reports the number of fetched-but-uncompleted requests.
func (f *Function) Inflight() int64 { return f.inflight }

// resetFunction performs a function-level reset (FLR): ring state is cleared,
// queued doorbells are discarded, cached translations are flushed, a latched
// miss is failed, and the reset epoch is bumped so every in-flight request is
// aborted as it reaches its next pipeline stage. The function's management
// state (enable, tree root, size, weight) survives — FLR recovers a wedged
// function without reprovisioning it. Runs in engine context (MMIO delivery).
func (c *Controller) resetFunction(f *Function) {
	f.Resets++
	c.FLRs++
	f.resetEpoch++
	// Drain every queue in index order: ring state, cursors, and queued
	// doorbells all go. (Leftover fetch-semaphore credits for the discarded
	// doorbells make the fetch loop scan and find nothing — harmless and
	// deterministic.)
	for _, q := range f.queues {
		q.clear()
		for {
			if _, ok := q.doorbells.TryPop(); !ok {
				break
			}
		}
	}
	c.btlb.flushFn(f.idx)
	if f.missPending {
		// A walker is parked on this miss; fail the walk so the chunk drains
		// (it will be aborted as stale before any completion is attempted).
		f.missPending = false
		f.missReason = MissReasonTranslate
		f.rewalkVerdict = RewalkFail
		f.rewalk.Fire()
	}
	c.Tracer.Emit(trace.Event{At: c.Eng.Now(), Kind: trace.KindReset, Fn: f.idx, Arg: uint64(f.resetEpoch)})
	c.captureFlight(c.Eng.Now(), f.idx, nil, "reset")
}
