// Package core implements the NeSC controller — the paper's primary
// contribution: a self-virtualizing, nested storage controller that exposes
// a physical function (PF) to the hypervisor and up to 64 virtual functions
// (VFs) to guests, translating each VF's virtual LBAs to physical LBAs in
// hardware through per-VF extent trees resident in host memory.
//
// The microarchitecture follows the paper's Figures 6–8:
//
//	per-function register files and DMA request/completion rings
//	  → per-VF request queues
//	  → round-robin VF multiplexer (splits requests into 1 KB chunks)
//	  → shared vLBA queue
//	  → translation unit: 8-entry BTLB + block-walk unit that overlaps
//	    two tree walks to hide host-memory DMA latency
//	  → shared pLBA queue
//	  → data-transfer unit (DMA engine channels) touching the medium
//	PF requests use physical LBAs directly and bypass translation through
//	the out-of-band (OOB) channel so a stalled VF walk never blocks the
//	hypervisor (paper §V-A).
//
// Translation misses (lazy allocation, pruned subtrees) park the walk, latch
// MissAddress/MissSize, and interrupt the hypervisor, which allocates
// blocks, rebuilds the tree, and writes RewalkTree to release the walk —
// the read/write flows of Figure 5.
package core

import (
	"fmt"
	"math/bits"

	"nesc/internal/blockdev"
	"nesc/internal/extent"
	"nesc/internal/fault"
	"nesc/internal/metrics"
	"nesc/internal/pcie"
	"nesc/internal/ring"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/stats"
	"nesc/internal/trace"
)

// Params configures the controller geometry and cost model.
type Params struct {
	// NumVFs is the maximum virtual function count (the prototype supports
	// 64).
	NumVFs int
	// BlockSize is the translation granularity in bytes (the paper operates
	// at 1 KB, "the smallest block size supported by ext4").
	BlockSize int
	// RingEntries is the request/completion ring depth per function.
	RingEntries int
	// BTLBEntries sizes the block translation lookaside buffer (8 in the
	// paper: "a small cache of the last 8 extents used in translation").
	BTLBEntries int
	// Walkers is the number of concurrently overlapped tree walks (2 in the
	// paper: "the unit can overlap two translation processes").
	Walkers int
	// DTUChannels is the number of outstanding data-transfer operations the
	// DMA engine sustains.
	DTUChannels int
	// TreeFanout is the extent-tree node fanout the walker expects.
	TreeFanout int
	// QueuesPerVF is the number of queue pairs each function exposes
	// (default 1, the paper's prototype; clamped to MaxQueuesPerFn). The
	// hypervisor may program an individual VF down from this capability
	// through the MgmtQueues management register.
	QueuesPerVF int
	// QueuePoolSize bounds the device-wide queue-pair pool. Queue-pair
	// state (cursors, doorbell FIFO) is not built per configured function;
	// it is leased from a shared pool when a ring register is first
	// programmed and returned when the function is disabled, so hardware
	// queue state scales with *leased* queues, not NumVFs×QueuesPerVF.
	// Zero means unbounded (the pool grows on demand), which keeps every
	// historical configuration working unchanged.
	QueuePoolSize int

	// Queue depths (backpressure points).
	ReqQueueDepth  int
	VLBAQueueDepth int
	PLBAQueueDepth int

	// Cost model.
	DescriptorFetchTime sim.Time // decode cost per fetched descriptor
	MuxChunkTime        sim.Time // per-chunk multiplexer occupancy
	BTLBHitTime         sim.Time // BTLB lookup
	WalkParseTime       sim.Time // node decode after its DMA arrives
	DTUChunkOverhead    sim.Time // per-chunk scatter/gather handling

	// CollectBreakdown enables per-chunk stage timing (the latency
	// breakdown experiment); off by default to keep hot paths lean.
	CollectBreakdown bool

	// Error recovery.
	//
	// MediumRetryMax is how many times the DTU retries a transient medium
	// error before latching StatusMediumError; MediumRetryDelay is the cost
	// of each retry.
	MediumRetryMax   int
	MediumRetryDelay sim.Time
	// MissResendInterval, when positive, re-raises the miss MSI while a
	// function's miss stays latched (recovers a miss interrupt lost on the
	// wire). Zero disables resending and leaves the event queue untouched.
	MissResendInterval sim.Time

	// AdmitInflight, when positive, bounds each VF's fetched-but-
	// uncompleted requests: a descriptor fetched past the bound completes
	// immediately with the retryable StatusBusy instead of entering the
	// pipeline, so a deadline-sensitive tenant fails fast at the device
	// rather than queueing behind work it can no longer use. Zero (the
	// default) disables admission control entirely.
	AdmitInflight int

	// DeviceID identifies this controller within a multi-device fabric
	// (default 0, the primary). It prefixes the device's PCIe function and
	// pipeline-process names, stamps flight-recorder captures, and keys the
	// injector's device-kill/partition latches at the medium. Device 0 keeps
	// the historical unprefixed names so single-device runs are bit-identical.
	DeviceID int
}

// DefaultParams matches the paper's prototype.
func DefaultParams() Params {
	return Params{
		NumVFs:              64,
		BlockSize:           1024,
		RingEntries:         256,
		BTLBEntries:         8,
		Walkers:             2,
		DTUChannels:         4,
		TreeFanout:          extent.DefaultFanout,
		QueuesPerVF:         1,
		ReqQueueDepth:       64,
		VLBAQueueDepth:      64,
		PLBAQueueDepth:      64,
		DescriptorFetchTime: 100 * sim.Nanosecond,
		MuxChunkTime:        60 * sim.Nanosecond,
		BTLBHitTime:         80 * sim.Nanosecond,
		WalkParseTime:       150 * sim.Nanosecond,
		DTUChunkOverhead:    220 * sim.Nanosecond,
		MediumRetryMax:      3,
		MediumRetryDelay:    2 * sim.Microsecond,
	}
}

// Operation codes in request descriptors (defined by internal/ring).
const (
	OpRead   = ring.OpRead
	OpWrite  = ring.OpWrite
	OpVerify = ring.OpVerify
)

// Completion status codes (defined by internal/ring; StatusDMAFault = 4
// lives in pipeline.go).
const (
	StatusOK             = ring.StatusOK
	StatusOutOfRange     = ring.StatusOutOfRange  // request exceeds the virtual device
	StatusNoSpace        = ring.StatusNoSpace     // hypervisor denied allocation (quota/space)
	StatusDisabled       = ring.StatusDisabled    // function not enabled
	StatusMediumError    = ring.StatusMediumError // medium error persisted through all retries
	StatusAborted        = ring.StatusAborted     // request killed by a function-level reset
	StatusIntegrityError = ring.StatusIntegrityError
	StatusBusy           = ring.StatusBusy // admission control fast-fail (retryable)
)

// MSI vectors raised by the controller. Queue 0's completions keep the
// legacy vector 0; queue q > 0 completes on vector 1+q, skipping the miss
// vector. A function therefore needs 1+numQueues vectors (at least 2).
const (
	VecCompletion = 0 // queue 0 completion (raised from the owning function)
	VecMiss       = 1 // translation miss (always raised from the PF)
)

// CompletionVector reports the MSI vector carrying queue q's completions.
func CompletionVector(q int) uint8 {
	if q == 0 {
		return VecCompletion
	}
	return uint8(1 + q)
}

// QueueOfVector inverts CompletionVector; ok is false for VecMiss (not a
// completion vector).
func QueueOfVector(v uint8) (q int, ok bool) {
	switch {
	case v == VecCompletion:
		return 0, true
	case v == VecMiss:
		return 0, false
	default:
		return int(v) - 1, true
	}
}

// Request is one descriptor fetched from a function's request ring.
type Request struct {
	fn     *Function
	q      *fnQueue // queue the descriptor was fetched from (completion routing)
	Op     uint32   // opcode with flag bits stripped
	ID     uint32
	LBA    uint64 // vLBA for VFs, pLBA for the PF
	Count  uint32 // blocks
	Buf    int64  // host memory address of the data buffer
	status uint32
	left   int    // chunks outstanding
	epoch  uint32 // function reset epoch at fetch time; stale = aborted
	qGen   uint32 // q's lease generation at fetch time; stale = drop completion

	// deadline is the absolute abandon-by time stamped at fetch when the
	// originating queue armed QRegDeadline (zero = no deadline). Every
	// pipeline stage checks it and completes the request StatusBusy once
	// it passes. admitted marks requests that entered the VF pipeline (and
	// so were charged to the function's pending-chunk estimate).
	deadline sim.Time
	admitted bool

	// Protection information (OpFlagPI). piGuard is the submitter's XOR of
	// per-block CRCs from the descriptor; piAccum is the device-side
	// accumulator, XORed per chunk so it is order-independent across DMA
	// channels.
	pi      bool
	piGuard uint32
	piAccum uint32

	// Telemetry. t0 is the virtual time the descriptor fetch began; span is
	// the request's lifecycle record (nil when span recording is off); obs
	// gates chunk stage-timestamping (breakdown collection or any telemetry
	// sink attached).
	t0   sim.Time
	span *trace.Span
	obs  bool

	// Causal attribution. ReqID is the controller-assigned monotonic request
	// id threading this request through spans, flight records, and scoreboard
	// events; retries counts medium/integrity retry rounds; segs accumulates
	// the per-segment latency vector folded into the attribution budget table
	// at completion (populated only while an Attributor is attached).
	ReqID   uint64
	retries int
	segs    slo.Segments
}

// chunk is the unit of translation and data transfer (one block).
type chunk struct {
	req  *Request
	idx  int    // 0-based chunk index within the request
	lba  uint64 // vLBA before translation, pLBA after
	buf  int64
	zero bool // hole read: DMA zeros, skip the medium

	// tag records the translation outcome (trace.TagHit/TagWalk/TagMiss).
	tag string

	// Stage timestamps (only stamped when req.obs).
	tQueued   sim.Time // entered the vLBA queue
	tTransIn  sim.Time // picked up by a walker
	tTransOut sim.Time // translation done, entered the pLBA queue
	tDTUIn    sim.Time // picked up by a DMA channel
}

// vfShardSize is the VF-table shard granularity. 64 functions per shard
// aligns a shard exactly with one miss-pending bitmap bank, so the banked
// PFRegMissPendingBank registers read straight out of one shard.
const vfShardSize = 64

// Controller is the NeSC device instance.
type Controller struct {
	Eng    *sim.Engine
	Fab    *pcie.Fabric
	Medium *blockdev.Medium
	P      Params

	pf *Function
	// vfShards is the lazily materialized VF table: shard s holds VFs
	// s*vfShardSize .. s*vfShardSize+63. The shard index is built at New
	// (a few pointers even at NumVFs=1024); a shard and its Function
	// entries come into existence only when a VF is first touched through
	// MMIO, so a configured-but-idle VF costs nothing.
	vfShards [][]*Function
	nMat     int               // materialized VF count
	fnIdx    map[pcie.FnID]int // PCIe routing ID → function index (0 = PF)

	vlbaQ *sim.FIFO[*chunk]
	oobQ  *sim.FIFO[*chunk]
	// scrubQ holds verify (OpVerify) chunks. The DTU drains it only when the
	// OOB and every VF queue are empty — scavenger priority, so background
	// scrubbing provably never delays foreground chunks at the pick point.
	scrubQ *sim.FIFO[*chunk]
	dtuW   *sim.Semaphore // counts items across per-VF pLBA queues+oobQ+scrubQ
	muxW   *sim.Semaphore // counts requests across all VF request queues

	// Active-VF work lists: one bit per VF (bit idx-1) in each of the two
	// schedulers. A VF joins a list when work lands in the corresponding
	// queue and leaves when the scheduler drains it, so the mux and DTU pick
	// loops walk the *active* VFs instead of scanning all NumVFs slots.
	muxActive []uint64
	dtuActive []uint64
	muxRR     int // mux scheduling cursor (VF index - 1)
	dtuRR     int // DTU scheduling cursor (VF index - 1)
	// Refill generations count completed credit-refill rounds. A VF
	// materialized mid-run starts with the credit an always-present idle VF
	// would have had: weight after any refill has happened, zero before.
	muxRefillGen uint64
	dtuRefillGen uint64

	// Device-wide queue-pair pool (lease on first ring programming, return
	// on function disable). qFree is the free list; qAllocated counts pool
	// members ever built, bounded by Params.QueuePoolSize when nonzero.
	qFree      []*fnQueue
	qAllocated int

	btlb *btlb

	// Inj, when non-nil, is consulted for DMA payload corruption (the
	// DMACorrupt site); medium-side sites are handled inside the Medium.
	Inj *fault.Injector

	// zeroCRC is the CRC of an all-zero block, accumulated for hole chunks
	// of PI reads.
	zeroCRC uint32

	// Tracer, when non-nil, records device events (nil = zero cost).
	Tracer *trace.Ring

	// Metrics and Spans are the telemetry sinks installed by
	// AttachTelemetry (telemetry.go); both nil-safe and off by default.
	Metrics *metrics.Registry
	Spans   *trace.SpanRecorder

	// Observability layer (AttachSLO, telemetry.go; all nil-safe and off by
	// default): Attrib folds per-request segment vectors into the latency
	// budget table, SLO classifies completions against per-tenant
	// objectives, and Board receives structured anomaly events (admission
	// rejects, deadline expirations, FLRs, terminal errors).
	Attrib *slo.Attributor
	SLO    *slo.Engine
	Board  *slo.Scoreboard

	// reqSeq issues ReqIDs: a per-controller monotonic counter stamped on
	// every fetched descriptor (pure state, so it never perturbs the event
	// schedule).
	reqSeq uint64

	// Flight is the always-armed error diagnostics buffer (flight.go): on
	// any terminal error completion or reset it snapshots the event-ring
	// tail and the offending request's span.
	Flight *FlightRecorder

	barBase int64
	sriov   pcie.SRIOVCap

	// Stats.
	BTLBStats     stats.Ratio
	WalkNodeReads int64
	Misses        int64
	ChunksDone    int64
	ReqsDone      int64

	// CoW stats: writes that trapped on a write-protected extent, and BTLB
	// entries dropped by the targeted invalidation command.
	CowFaults         int64
	BTLBInvalidations int64

	// Latches for the PF targeted-invalidation command (PFRegInvVLBA/Count).
	invVLBA  uint64
	invCount uint64

	// Error/recovery stats, aggregated across functions.
	FetchDrops    int64 // doorbells lost to descriptor-fetch DMA errors
	CplDrops      int64 // completions lost to completion-ring DMA errors
	MediumErrors  int64 // chunks that exhausted medium retries
	MediumRetries int64 // individual medium retry attempts
	DMAFaults     int64 // chunks failed by data-buffer DMA faults
	FLRs          int64 // function-level resets performed
	AbortedChunks int64 // chunks killed by a reset
	MissResends   int64 // miss MSIs re-raised by the resend timer
	BadRingSizes  int64 // rejected ring-size register writes
	BadDoorbells  int64 // ignored incoherent doorbell writes

	// Integrity stats.
	IntegrityErrors  int64 // requests latched StatusIntegrityError
	IntegrityRepairs int64 // integrity failures healed by retry or scrub rewrite
	ScrubChunks      int64 // verify chunks processed

	// Admission-control / deadline stats.
	AdmitRejects        int64 // requests fast-failed StatusBusy at the admission gate
	DeadlineExpirations int64 // chunks abandoned StatusBusy past their deadline
	// chunkEWMA is a timeless estimator of DTU chunk service time (updated
	// by plain arithmetic on timestamps the DTU loop already takes, so it
	// never perturbs the event schedule). The admission gate multiplies it
	// by a function's pending chunks to decide whether a deadline-armed
	// request can possibly finish in time.
	chunkEWMA sim.Time

	// Queue-pair pool stats.
	QueueLeases     int64 // queue pairs leased to functions
	QueueReturns    int64 // queue pairs returned to the pool
	QueueLeaseFails int64 // ring programmings rejected by an exhausted pool
	// ShadowBatches counts fetch batches initiated from a queue's shadow
	// doorbell word rather than an MMIO doorbell write.
	ShadowBatches int64

	// fnGaugeReg, when telemetry is attached, receives per-function gauges
	// for VFs materialized after AttachTelemetry.
	fnGaugeReg *metrics.Registry

	// Breakdown holds per-stage chunk latencies in microseconds (populated
	// only when Params.CollectBreakdown is set).
	Breakdown struct {
		QueueWait stats.Sampler // vLBA queue residence
		Translate stats.Sampler // BTLB lookup / tree walk
		DTUWait   stats.Sampler // pLBA queue residence
		Transfer  stats.Sampler // DMA channel service (medium + PCIe)
	}
}

// New builds a controller on the fabric, registers its functions, and starts
// its pipeline processes. The medium is the physical storage behind the PF's
// LBA space.
func New(eng *sim.Engine, fab *pcie.Fabric, medium *blockdev.Medium, p Params) (*Controller, error) {
	if p.BlockSize != medium.Store().BlockSize() {
		return nil, fmt.Errorf("core: controller block size %d != medium block size %d", p.BlockSize, medium.Store().BlockSize())
	}
	if p.QueuesPerVF < 1 {
		p.QueuesPerVF = 1
	}
	if p.QueuesPerVF > MaxQueuesPerFn {
		return nil, fmt.Errorf("core: QueuesPerVF %d exceeds the register-file limit %d", p.QueuesPerVF, MaxQueuesPerFn)
	}
	c := &Controller{
		Eng:       eng,
		Fab:       fab,
		Medium:    medium,
		P:         p,
		vfShards:  make([][]*Function, (p.NumVFs+vfShardSize-1)/vfShardSize),
		fnIdx:     make(map[pcie.FnID]int),
		vlbaQ:     sim.NewFIFO[*chunk](eng, p.VLBAQueueDepth),
		oobQ:      sim.NewFIFO[*chunk](eng, 0),
		scrubQ:    sim.NewFIFO[*chunk](eng, 0),
		dtuW:      sim.NewSemaphore(eng, 0),
		muxW:      sim.NewSemaphore(eng, 0),
		muxActive: make([]uint64, (p.NumVFs+63)/64),
		dtuActive: make([]uint64, (p.NumVFs+63)/64),
		btlb:      newBTLB(p.BTLBEntries),
		sriov:     pcie.SRIOVCap{TotalVFs: p.NumVFs},
		Flight:    NewFlightRecorder(8, 32),
	}
	c.zeroCRC = ring.BlockCRC(make([]byte, p.BlockSize))
	medium.SetDeviceIndex(p.DeviceID)
	// The PF is eager — it carries the device's management plane — but every
	// VF materializes lazily on its first MMIO touch, so a huge configured
	// VF count costs only the shard index above.
	c.pf = c.newFunction(0, fab.RegisterFunction(c.devName("nesc")+"-pf"))
	c.pf.enabled = true
	c.pf.sizeBlocks = uint64(medium.Store().NumBlocks())
	c.fnIdx[c.pf.id] = 0
	c.barBase = fab.MapBAR(c, c.BARSize())
	fab.AllocMSIVectors(c.pf.id, c.nVec())

	// Pipeline processes.
	eng.Go(c.devName("nesc")+"-mux", c.muxLoop)
	for w := 0; w < p.Walkers; w++ {
		eng.Go(fmt.Sprintf("%s-walker%d", c.devName("nesc"), w), c.walkerLoop)
	}
	for d := 0; d < p.DTUChannels; d++ {
		eng.Go(fmt.Sprintf("%s-dtu%d", c.devName("nesc"), d), c.dtuLoop)
	}
	return c, nil
}

// devName returns base for the primary device and base<ID> for replicas, so
// a multi-device fabric's functions and pipeline processes are tellable
// apart while single-device naming stays exactly historical.
func (c *Controller) devName(base string) string {
	if c.P.DeviceID == 0 {
		return base
	}
	return fmt.Sprintf("%s%d", base, c.P.DeviceID)
}

// DeviceID reports this controller's identity within the device fleet.
func (c *Controller) DeviceID() int { return c.P.DeviceID }

// BARBase reports the device's bus address as enumerated on the fabric.
func (c *Controller) BARBase() int64 { return c.barBase }

// PF returns the physical function.
func (c *Controller) PF() *Function { return c.pf }

// VF returns virtual function idx (0-based), materializing its device state
// on first touch. Reaching for a VF — from the hypervisor, a guest mapping,
// or a test — is exactly the "first MMIO access" event that brings it into
// existence, so the accessor is the materialization point.
func (c *Controller) VF(idx int) *Function {
	if f := c.vfAt(idx); f != nil {
		return f
	}
	return c.materializeVF(idx)
}

// vfAt returns VF idx if it has been materialized, nil otherwise (including
// out-of-range indices). It never allocates, so scan paths that must not
// conjure state (miss-pending bitmaps, schedulers) use it.
func (c *Controller) vfAt(idx int) *Function {
	if idx < 0 || idx >= c.P.NumVFs {
		return nil
	}
	sh := c.vfShards[idx/vfShardSize]
	if sh == nil {
		return nil
	}
	return sh[idx%vfShardSize]
}

// materializeVF builds VF idx's device state: PCIe identity, MSI vectors,
// register file, request queue, and fetch process. All of it is timeless
// (the fetch process parks immediately), so materializing mid-run does not
// perturb the event schedule. The scheduler credits are set to what an
// always-present idle VF would hold — its weight after any refill round has
// run, zero before — keeping low-VF-count schedules bit-identical to the
// eager construction.
func (c *Controller) materializeVF(idx int) *Function {
	if idx < 0 || idx >= c.P.NumVFs {
		panic(fmt.Sprintf("core: VF index %d out of range (NumVFs=%d)", idx, c.P.NumVFs))
	}
	s := idx / vfShardSize
	if c.vfShards[s] == nil {
		c.vfShards[s] = make([]*Function, vfShardSize)
	}
	f := c.newFunction(idx+1, c.Fab.RegisterFunction(fmt.Sprintf("%s-vf%d", c.devName("nesc"), idx)))
	c.Fab.AllocMSIVectors(f.id, c.nVec())
	if c.muxRefillGen > 0 {
		f.credit = f.weight
	}
	if c.dtuRefillGen > 0 {
		f.dtuCredit = f.weight
	}
	c.vfShards[s][idx%vfShardSize] = f
	c.fnIdx[f.id] = f.idx
	c.nMat++
	if c.fnGaugeReg != nil {
		c.registerFnGauges(c.fnGaugeReg, f)
	}
	return f
}

// nVec is each function's MSI vector count: one completion vector per queue
// plus the miss vector (vector 1, raised only from the PF but reserved in
// every function's numbering).
func (c *Controller) nVec() int {
	n := c.P.QueuesPerVF + 1
	if n < 2 {
		n = 2
	}
	return n
}

// forEachVF visits the materialized VFs in function-index order.
func (c *Controller) forEachVF(fn func(*Function)) {
	for _, sh := range c.vfShards {
		if sh == nil {
			continue
		}
		for _, f := range sh {
			if f != nil {
				fn(f)
			}
		}
	}
}

// MaterializedVFs reports how many VFs have device state built.
func (c *Controller) MaterializedVFs() int { return c.nMat }

// LeasedQueues reports how many queue pairs are currently leased out.
func (c *Controller) LeasedQueues() int { return c.qAllocated - len(c.qFree) }

// FnIndex resolves a PCIe routing ID to its function index (0 = PF,
// 1..NumVFs = VFs) without materializing anything — only functions that
// exist are in the map.
func (c *Controller) FnIndex(id pcie.FnID) (int, bool) {
	idx, ok := c.fnIdx[id]
	return idx, ok
}

// StateFootprint estimates the controller's resident device-state bytes
// from explicit counts of what is actually allocated — materialized
// functions, reserved queue slots, pooled queue pairs, shard index, active
// bitmaps, and the flight buffer once armed. The per-item sizes are nominal
// model constants (not unsafe.Sizeof), so the figure is deterministic across
// runs and platforms; the scale experiment uses it to show memory growing
// with active tenants, not configured ones.
func (c *Controller) StateFootprint() int64 {
	const (
		fnStateBytes   = 416 // Function struct + register file
		fifoSlotBytes  = 16  // one reserved FIFO slot
		queuePairBytes = 112 // fnQueue struct + doorbell FIFO header
		flightRecBytes = 256 // one flight-record slot
	)
	b := int64(len(c.vfShards)+len(c.muxActive)+len(c.dtuActive)) * 8
	for _, sh := range c.vfShards {
		if sh != nil {
			b += vfShardSize * 8
		}
	}
	fns := int64(1 + c.nMat)
	b += fns * (fnStateBytes + int64(c.P.ReqQueueDepth+c.P.PLBAQueueDepth)*fifoSlotBytes)
	b += int64(c.qAllocated) * queuePairBytes
	if c.Flight != nil && c.Flight.recs != nil {
		b += int64(len(c.Flight.recs)) * flightRecBytes
	}
	return b
}

// SRIOV exposes the device's SR-IOV capability record.
func (c *Controller) SRIOV() *pcie.SRIOVCap { return &c.sriov }

// Function is one facet of the controller: the PF or a VF. Each has its own
// register file and queue-pair array, exactly as each SR-IOV function has its
// own PCIe identity.
type Function struct {
	c   *Controller
	idx int // 0 = PF, 1..NumVFs = VFs
	id  pcie.FnID

	// Queue pairs (guest-programmable). numQueues is the active count the
	// hypervisor programmed through MgmtQueues; queues beyond it exist in
	// the register file but reject traffic. A slot is nil until the guest
	// programs a ring register, which leases queue-pair state from the
	// device-wide pool; disabling the function returns every slot.
	queues    []*fnQueue
	numQueues int
	// fetchW counts pending doorbells across all of the function's queues;
	// fetchRR is the intra-function round-robin cursor of the fetch stage.
	fetchW  *sim.Semaphore
	fetchRR int

	// Hypervisor-programmable management registers.
	enabled    bool
	treeRoot   int64
	sizeBlocks uint64
	// fetchBacked marks a VF whose image is a cas manifest fork: holes are
	// not zero-fill but unmaterialized content, so every hole — read or
	// write — raises a MissReasonFetch miss. Survives FLR like the other
	// management registers.
	fetchBacked bool

	// Miss latch (read by the hypervisor on a miss interrupt).
	missAddr      uint64
	missSize      uint32
	missIsWrite   bool
	missReason    uint32 // MissReason* code for the latched miss
	missPending   bool
	missGen       uint64 // bumped per latch; guards the resend timer
	rewalk        *sim.Signal
	rewalkVerdict uint32 // what the hypervisor wrote to RewalkTree

	// Reset state: resetEpoch is bumped by each function-level reset, and
	// requests stamped with an older epoch are aborted at every pipeline
	// stage; inflight counts fetched-but-uncompleted requests, exposed
	// through RegReset so the hypervisor can poll for drain.
	resetEpoch uint32
	inflight   int64
	// pendingChunks counts blocks of admitted-but-uncompleted requests —
	// the admission gate's backlog estimate for deadline feasibility.
	pendingChunks int64

	reqQ *sim.FIFO[*Request]
	// plbaQ holds the VF's translated chunks awaiting a DMA channel (nil
	// for the PF, whose chunks bypass translation through the OOB queue).
	plbaQ *sim.FIFO[*chunk]

	// QoS: the multiplexer serves up to `weight` requests — and the DMA
	// engine up to `weight` chunks — per VF per scheduling round (deficit
	// round robin; paper §IV-D "different priorities for each VF").
	weight    uint32
	credit    uint32
	dtuCredit uint32

	// Stats.
	Reqs, Blocks int64

	// AER-style per-function error counters, exposed through the RegErr*
	// registers.
	DMAFaults        int64
	MediumErrors     int64
	MediumRetries    int64
	Resets           int64
	FetchDrops       int64
	CplDrops         int64
	BadRingSizes     int64
	BadDoorbells     int64
	IntegrityErrors  int64
	IntegrityRepairs int64
	AdmitRejects     int64
}

// fnQueue is one of a function's queue pairs: the guest-programmable ring
// registers plus the device-side cursors and doorbell FIFO. Queue pairs are
// pooled device-wide: a function's slot is empty until a ring register
// programming leases one, and a disable returns it for reuse by any
// function.
type fnQueue struct {
	f   *Function
	idx int

	ringBase int64
	ringSize uint32
	cplBase  int64
	consumed uint32 // SQ consumer index (device side)
	cplSeq   uint32 // CQ sequence counter
	// deadline is the queue's per-request latency budget (QRegDeadline):
	// every descriptor fetched from the queue is stamped with
	// fetch-time + deadline and abandoned with the retryable StatusBusy
	// once the stamp passes. Zero (the default) disarms.
	deadline sim.Time
	// shadowBase, when nonzero, is the host address of the queue's 8-byte
	// shadow-doorbell block (ring.ShadowBytes): the guest publishes new
	// producer indices there and the device publishes how far it consumed
	// before parking, so most doorbell MMIOs can be skipped.
	shadowBase int64

	// gen counts lease/return transitions. Requests are stamped with the
	// lease generation at fetch; a completion whose stamp no longer matches
	// is dropped, so a recycled queue can never receive a previous tenant's
	// completion DMA.
	gen uint32

	doorbells *sim.FIFO[uint32]

	// Reqs counts requests fetched from this queue (intra-VF fairness
	// accounting); reset when the queue returns to the pool.
	Reqs int64
}

// clear wipes the queue's guest-programmable state and cursors (FLR,
// disable).
func (q *fnQueue) clear() {
	q.ringBase, q.ringSize, q.cplBase = 0, 0, 0
	q.consumed, q.cplSeq = 0, 0
	q.shadowBase = 0
	q.deadline = 0
}

// leaseQueue binds a pooled queue pair to function f's slot qi. Returns nil
// (and counts the rejection) when QueuePoolSize is exhausted; the triggering
// register write is ignored, exactly like a write to an out-of-range queue.
func (c *Controller) leaseQueue(f *Function, qi int) *fnQueue {
	var q *fnQueue
	if n := len(c.qFree); n > 0 {
		q = c.qFree[n-1]
		c.qFree = c.qFree[:n-1]
	} else if c.P.QueuePoolSize == 0 || c.qAllocated < c.P.QueuePoolSize {
		q = &fnQueue{doorbells: sim.NewFIFO[uint32](c.Eng, 0)}
		c.qAllocated++
	} else {
		c.QueueLeaseFails++
		return nil
	}
	q.f, q.idx = f, qi
	q.gen++
	f.queues[qi] = q
	c.QueueLeases++
	return q
}

// returnQueue detaches function f's slot qi and puts the queue pair back on
// the free list: ring state cleared, pending doorbells drained, generation
// bumped so in-flight completions for the old tenant die at the guard.
func (c *Controller) returnQueue(f *Function, qi int) {
	q := f.queues[qi]
	if q == nil {
		return
	}
	q.clear()
	for {
		if _, ok := q.doorbells.TryPop(); !ok {
			break
		}
	}
	q.gen++
	q.Reqs = 0
	q.f = nil
	f.queues[qi] = nil
	c.qFree = append(c.qFree, q)
	c.QueueReturns++
}

func (c *Controller) newFunction(idx int, id pcie.FnID) *Function {
	f := &Function{
		c:      c,
		idx:    idx,
		id:     id,
		fetchW: sim.NewSemaphore(c.Eng, 0),
		reqQ:   sim.NewFIFO[*Request](c.Eng, c.P.ReqQueueDepth),
		rewalk: sim.NewSignal(c.Eng),
		weight: 1,
	}
	f.queues = make([]*fnQueue, c.P.QueuesPerVF)
	f.numQueues = len(f.queues)
	if idx > 0 {
		f.plbaQ = sim.NewFIFO[*chunk](c.Eng, c.P.PLBAQueueDepth)
	}
	c.Eng.Go(fmt.Sprintf("nesc-fetch%d", idx), f.fetchLoop)
	return f
}

// NumQueues reports the function's active queue-pair count.
func (f *Function) NumQueues() int { return f.numQueues }

// QueueReqs reports how many requests were fetched from queue q (0 for a
// slot with no queue pair leased).
func (f *Function) QueueReqs(q int) int64 {
	if f.queues[q] == nil {
		return 0
	}
	return f.queues[q].Reqs
}

// ID reports the function's PCIe routing ID.
func (f *Function) ID() pcie.FnID { return f.id }

// Index reports the function index (0 = PF).
func (f *Function) Index() int { return f.idx }

// Enabled reports whether the function accepts requests.
func (f *Function) Enabled() bool { return f.enabled }

// SizeBlocks reports the virtual device size in blocks.
func (f *Function) SizeBlocks() uint64 { return f.sizeBlocks }

// TreeRoot reports the configured extent tree root (diagnostics).
func (f *Function) TreeRoot() int64 { return f.treeRoot }

// Inflight reports the number of fetched-but-uncompleted requests.
func (f *Function) Inflight() int64 { return f.inflight }

// resetFunction performs a function-level reset (FLR): ring state is cleared,
// queued doorbells are discarded, cached translations are flushed, a latched
// miss is failed, and the reset epoch is bumped so every in-flight request is
// aborted as it reaches its next pipeline stage. The function's management
// state (enable, tree root, size, weight) survives — FLR recovers a wedged
// function without reprovisioning it. Runs in engine context (MMIO delivery).
func (c *Controller) resetFunction(f *Function) {
	f.Resets++
	c.FLRs++
	f.resetEpoch++
	// Drain every leased queue in index order: ring state, cursors, and
	// queued doorbells all go. The queue pairs stay leased — FLR recovers
	// the function, it does not deprovision it — so an in-flight stale
	// completion still finds its generation intact and dies at the
	// ring-state guard, never in another tenant's memory. (Leftover
	// fetch-semaphore credits for the discarded doorbells make the fetch
	// loop scan and find nothing — harmless and deterministic.)
	for _, q := range f.queues {
		if q == nil {
			continue
		}
		q.clear()
		for {
			if _, ok := q.doorbells.TryPop(); !ok {
				break
			}
		}
	}
	c.btlb.flushFn(f.idx)
	if f.missPending {
		// A walker is parked on this miss; fail the walk so the chunk drains
		// (it will be aborted as stale before any completion is attempted).
		f.missPending = false
		f.missReason = MissReasonTranslate
		f.rewalkVerdict = RewalkFail
		f.rewalk.Fire()
	}
	c.Tracer.Emit(trace.Event{At: c.Eng.Now(), Kind: trace.KindReset, Fn: f.idx, Arg: uint64(f.resetEpoch)})
	c.captureFlight(c.Eng.Now(), f.idx, nil, "reset")
	c.Board.Emit(slo.Event{At: c.Eng.Now(), Kind: slo.EventFLR, Dev: c.P.DeviceID, VF: f.idx})
}

// Active-VF work-list primitives. Each scheduler keeps a bitmap with bit
// idx-1 set exactly while VF idx's feeding queue is non-empty: the bit is
// set after a push lands (before the scheduler semaphore is released, so a
// granted permit always finds a set bit) and cleared by the scheduler when
// its pop empties the queue. Picks then walk set bits cyclically from the
// cursor instead of scanning NumVFs slots.

func setBit(bm []uint64, i int)   { bm[i>>6] |= 1 << uint(i&63) }
func clearBit(bm []uint64, i int) { bm[i>>6] &^= 1 << uint(i&63) }

// nextSetBit returns the first set bit position in [from, limit), or -1.
func nextSetBit(bm []uint64, from, limit int) int {
	if from >= limit {
		return -1
	}
	w := from >> 6
	cur := bm[w] &^ ((1 << uint(from&63)) - 1)
	for {
		if cur != 0 {
			b := w<<6 + bits.TrailingZeros64(cur)
			if b >= limit {
				return -1
			}
			return b
		}
		w++
		if w<<6 >= limit || w >= len(bm) {
			return -1
		}
		cur = bm[w]
	}
}

// pickActive returns the first set bit of bm at a cyclic position >= *cursor
// for which ok holds, leaving the cursor ON the picked position (deficit
// round robin resumes at the same VF while it has credit). Returns -1 when
// no active VF passes — the caller refills credits and retries, exactly the
// two-pass structure of the flat scan. A failed pass leaves the cursor
// unchanged, as a fruitless full-circle scan did.
func (c *Controller) pickActive(bm []uint64, cursor *int, ok func(i int) bool) int {
	n := c.P.NumVFs
	for b := nextSetBit(bm, *cursor, n); b >= 0; b = nextSetBit(bm, b+1, n) {
		if ok(b) {
			*cursor = b
			return b
		}
	}
	for b := nextSetBit(bm, 0, *cursor); b >= 0; b = nextSetBit(bm, b+1, *cursor) {
		if ok(b) {
			*cursor = b
			return b
		}
	}
	return -1
}

// muxNote joins VF f to the multiplexer's active list (request queued).
func (c *Controller) muxNote(f *Function) { setBit(c.muxActive, f.idx-1) }

// dtuNote joins VF f to the DTU's active list (translated chunk queued).
func (c *Controller) dtuNote(f *Function) { setBit(c.dtuActive, f.idx-1) }

// muxRefill starts a new multiplexer scheduling round: every materialized
// VF's credit returns to its weight. The generation counter lets a VF
// materialized later reconstruct the credit it would have held.
func (c *Controller) muxRefill() {
	c.muxRefillGen++
	c.forEachVF(func(f *Function) { f.credit = f.weight })
}

// dtuRefill starts a new DTU scheduling round.
func (c *Controller) dtuRefill() {
	c.dtuRefillGen++
	c.forEachVF(func(f *Function) { f.dtuCredit = f.weight })
}
