package core

import (
	"encoding/binary"
)

// BAR layout. Following the paper's prototype (§VI), the device's BAR is
// divided into 4 KB pages: page 0 exports the PF's I/O registers, page i
// exports VF i's, and a final management page holds the hypervisor-only
// per-VF control blocks (extent tree root, miss latch, rewalk doorbell).
// The hypervisor maps page 0 and the management page into its own address
// space and maps exactly one VF page into each guest, which is what makes a
// guest unable to touch another function's state.
const (
	// PageSize is the BAR page granularity.
	PageSize = 4096

	// Per-function I/O registers (offsets within a function page).
	RegRingBase   = 0x00 // request ring base address (8B)
	RegRingSize   = 0x08 // ring entry count (4B)
	RegCplBase    = 0x10 // completion ring base address (8B)
	RegDoorbell   = 0x18 // write: new producer index (4B)
	RegDeviceSize = 0x20 // RO: virtual device size in blocks (8B)
	RegCplSeq     = 0x28 // RO: completion sequence counter (4B)
	RegReset      = 0x30 // write 1: function-level reset; reads 1 while draining (4B)

	// AER-style per-function error counters (RO).
	RegErrDMAFaults = 0x38 // chunks failed by data-buffer DMA faults (8B)
	RegErrMedium    = 0x40 // chunks that exhausted medium retries (8B)
	RegErrRetries   = 0x48 // medium retry attempts (8B)
	RegErrResets    = 0x50 // function-level resets performed (8B)

	// PF-page global registers.
	PFRegBTLBFlush   = 0x800 // write: flush the BTLB (4B)
	PFRegMissPending = 0x808 // RO: bitmap of VFs with latched misses (8B)
	PFRegNumVFs      = 0x810 // RO: supported VF count (4B)

	// Management page: one 64-byte block per VF, indexed by VF number - 1.
	MgmtStride      = 64
	MgmtTreeRoot    = 0x00 // extent tree root address (8B)
	MgmtMissAddr    = 0x08 // RO: missing vLBA (8B)
	MgmtMissSize    = 0x10 // RO: missing block count (4B)
	MgmtRewalk      = 0x14 // write RewalkRetry/RewalkFail (4B)
	MgmtEnable      = 0x18 // 1 = VF enabled (4B)
	MgmtDeviceSize  = 0x20 // virtual device size in blocks (8B)
	MgmtMissIsWrite = 0x28 // RO: 1 when the latched miss is a write (4B)
	MgmtWeight      = 0x2C // QoS weight for the VF multiplexer, 1..255 (4B)

	// RewalkTree verdicts.
	RewalkRetry = 1
	RewalkFail  = 2

	// Wire sizes.
	DescBytes = 32
	CplBytes  = 16
)

// BARSize reports the device BAR size: PF page + VF pages + management page.
func (c *Controller) BARSize() int64 { return int64(c.P.NumVFs+2) * PageSize }

// FunctionPageOffset reports the BAR offset of function idx's I/O page
// (0 = PF).
func (c *Controller) FunctionPageOffset(idx int) int64 { return int64(idx) * PageSize }

// MgmtPageOffset reports the BAR offset of the management page.
func (c *Controller) MgmtPageOffset() int64 { return int64(c.P.NumVFs+1) * PageSize }

// PCIeName implements pcie.Device.
func (c *Controller) PCIeName() string { return "nesc" }

func (c *Controller) funcByPage(page int) *Function {
	if page == 0 {
		return c.pf
	}
	if page >= 1 && page <= len(c.vfs) {
		return c.vfs[page-1]
	}
	return nil
}

// MMIORead implements pcie.Device.
func (c *Controller) MMIORead(off int64, size int) uint64 {
	page := int(off / PageSize)
	reg := off % PageSize
	if page == c.P.NumVFs+1 {
		return c.mgmtRead(reg)
	}
	f := c.funcByPage(page)
	if f == nil {
		return 0
	}
	if page == 0 {
		switch reg {
		case PFRegMissPending:
			var bits uint64
			for i, vf := range c.vfs {
				if vf.missPending {
					bits |= 1 << uint(i)
				}
			}
			return bits
		case PFRegNumVFs:
			return uint64(c.P.NumVFs)
		}
	}
	switch reg {
	case RegRingBase:
		return uint64(f.ringBase)
	case RegRingSize:
		return uint64(f.ringSize)
	case RegCplBase:
		return uint64(f.cplBase)
	case RegDeviceSize:
		return f.sizeBlocks
	case RegCplSeq:
		return uint64(f.cplSeq)
	case RegReset:
		if f.inflight > 0 {
			return 1
		}
		return 0
	case RegErrDMAFaults:
		return uint64(f.DMAFaults)
	case RegErrMedium:
		return uint64(f.MediumErrors)
	case RegErrRetries:
		return uint64(f.MediumRetries)
	case RegErrResets:
		return uint64(f.Resets)
	}
	return 0
}

// MMIOWrite implements pcie.Device. Writes to offsets outside a page's
// writable registers are silently ignored — in particular, a guest writing
// management offsets through its own VF page has no effect.
func (c *Controller) MMIOWrite(off int64, size int, val uint64) {
	page := int(off / PageSize)
	reg := off % PageSize
	if page == c.P.NumVFs+1 {
		c.mgmtWrite(reg, val)
		return
	}
	f := c.funcByPage(page)
	if f == nil {
		return
	}
	if page == 0 && reg == PFRegBTLBFlush {
		c.btlb.flush()
		return
	}
	switch reg {
	case RegRingBase:
		f.ringBase = int64(val)
	case RegRingSize:
		if val > 0 && val <= 1<<16 {
			f.ringSize = uint32(val)
			// (Re)programming the ring resets the queue cursors, so a new
			// owner of the function starts from a clean producer/consumer
			// state.
			f.consumed = 0
			f.cplSeq = 0
		}
	case RegCplBase:
		f.cplBase = int64(val)
	case RegDoorbell:
		f.doorbells.TryPush(uint32(val))
	case RegReset:
		if val == 1 {
			c.resetFunction(f)
		}
	}
}

func (c *Controller) mgmtVF(reg int64) (*Function, int64) {
	idx := int(reg / MgmtStride)
	if idx < 0 || idx >= len(c.vfs) {
		return nil, 0
	}
	return c.vfs[idx], reg % MgmtStride
}

func (c *Controller) mgmtRead(reg int64) uint64 {
	f, r := c.mgmtVF(reg)
	if f == nil {
		return 0
	}
	switch r {
	case MgmtTreeRoot:
		return uint64(f.treeRoot)
	case MgmtMissAddr:
		return f.missAddr
	case MgmtMissSize:
		return uint64(f.missSize)
	case MgmtEnable:
		if f.enabled {
			return 1
		}
		return 0
	case MgmtDeviceSize:
		return f.sizeBlocks
	case MgmtMissIsWrite:
		if f.missIsWrite {
			return 1
		}
		return 0
	case MgmtWeight:
		return uint64(f.weight)
	}
	return 0
}

func (c *Controller) mgmtWrite(reg int64, val uint64) {
	f, r := c.mgmtVF(reg)
	if f == nil {
		return
	}
	switch r {
	case MgmtTreeRoot:
		f.treeRoot = int64(val)
	case MgmtRewalk:
		f.rewalkVerdict = uint32(val)
		f.missPending = false
		f.rewalk.Fire()
	case MgmtEnable:
		was := f.enabled
		f.enabled = val == 1
		if was && !f.enabled {
			// Disabling a VF drops its cached translations and ring state;
			// the hypervisor quiesces the function before disabling it.
			c.btlb.flushFn(f.idx)
			f.ringBase, f.ringSize, f.cplBase = 0, 0, 0
			f.consumed, f.cplSeq = 0, 0
		}
	case MgmtDeviceSize:
		f.sizeBlocks = val
	case MgmtWeight:
		if val >= 1 && val <= 255 {
			f.weight = uint32(val)
		}
	}
}

// EncodeDescriptor writes a request descriptor in the device wire format.
// Drivers and the device share this layout.
func EncodeDescriptor(b []byte, op, id uint32, lba uint64, count uint32, buf int64) {
	binary.BigEndian.PutUint32(b[0:], op)
	binary.BigEndian.PutUint32(b[4:], id)
	binary.BigEndian.PutUint64(b[8:], lba)
	binary.BigEndian.PutUint32(b[16:], count)
	binary.BigEndian.PutUint32(b[20:], 0)
	binary.BigEndian.PutUint64(b[24:], uint64(buf))
}

func decodeDescriptor(b []byte) (op, id uint32, lba uint64, count uint32, buf int64) {
	op = binary.BigEndian.Uint32(b[0:])
	id = binary.BigEndian.Uint32(b[4:])
	lba = binary.BigEndian.Uint64(b[8:])
	count = binary.BigEndian.Uint32(b[16:])
	buf = int64(binary.BigEndian.Uint64(b[24:]))
	return
}

// EncodeCompletion writes a completion entry (used by the device; exported
// for driver-side tests).
func EncodeCompletion(b []byte, id, status, seq uint32) {
	binary.BigEndian.PutUint32(b[0:], id)
	binary.BigEndian.PutUint32(b[4:], status)
	binary.BigEndian.PutUint32(b[8:], seq)
	binary.BigEndian.PutUint32(b[12:], 0)
}

// DecodeCompletion parses a completion entry.
func DecodeCompletion(b []byte) (id, status, seq uint32) {
	return binary.BigEndian.Uint32(b[0:]), binary.BigEndian.Uint32(b[4:]), binary.BigEndian.Uint32(b[8:])
}
