package core

import (
	"nesc/internal/ring"
	"nesc/internal/sim"
)

// BAR layout. Following the paper's prototype (§VI), the device's BAR is
// divided into 4 KB pages: page 0 exports the PF's I/O registers, page i
// exports VF i's, and a final management page holds the hypervisor-only
// per-VF control blocks (extent tree root, miss latch, rewalk doorbell).
// The hypervisor maps page 0 and the management page into its own address
// space and maps exactly one VF page into each guest, which is what makes a
// guest unable to touch another function's state.
//
// Each function owns up to MaxQueuesPerFn queue pairs. Queue q's registers
// live in a fixed-stride block at QueueRegBase + q*QueueRegStride; the legacy
// single-ring offsets (RegRingBase..RegCplSeq) alias queue 0's block, so a
// single-queue driver is oblivious to the extension.
const (
	// PageSize is the BAR page granularity.
	PageSize = 4096

	// Per-function I/O registers (offsets within a function page). These
	// alias queue 0 of the function's queue-pair array.
	RegRingBase   = 0x00 // request ring base address (8B)
	RegRingSize   = 0x08 // ring entry count (4B)
	RegCplBase    = 0x10 // completion ring base address (8B)
	RegDoorbell   = 0x18 // write: new producer index (4B)
	RegDeviceSize = 0x20 // RO: virtual device size in blocks (8B)
	RegCplSeq     = 0x28 // RO: completion sequence counter (4B)
	RegReset      = 0x30 // write 1: function-level reset; reads 1 while draining (4B)

	// AER-style per-function error counters (RO).
	RegErrDMAFaults   = 0x38 // chunks failed by data-buffer DMA faults (8B)
	RegErrMedium      = 0x40 // chunks that exhausted medium retries (8B)
	RegErrRetries     = 0x48 // medium retry attempts (8B)
	RegErrResets      = 0x50 // function-level resets performed (8B)
	RegNumQueues      = 0x58 // RO: active queue-pair count (4B)
	RegErrBadRing     = 0x60 // RO: rejected ring-size writes (8B)
	RegErrBadDoorbell = 0x68 // RO: ignored incoherent doorbell writes (8B)
	RegErrIntegrity   = 0x70 // RO: requests latched StatusIntegrityError (8B)
	RegIntegrityFixes = 0x78 // RO: integrity failures healed by retry/scrub (8B)

	// Per-queue register blocks. Queue q's block sits at
	// QueueRegBase + q*QueueRegStride; offsets within a block below.
	QueueRegBase   = 0x100
	QueueRegStride = 0x40
	QRegRingBase   = 0x00 // request ring base address (8B)
	QRegRingSize   = 0x08 // ring entry count (4B)
	QRegCplBase    = 0x10 // completion ring base address (8B)
	QRegDoorbell   = 0x18 // write: new producer index (4B)
	QRegCplSeq     = 0x20 // RO: completion sequence counter (4B)
	QRegShadow     = 0x28 // shadow-doorbell block host address, 0 disarms (8B)
	QRegDeadline   = 0x30 // per-request deadline budget in ns, 0 disarms (8B)

	// MaxQueuesPerFn bounds the queue pairs a function can expose (the block
	// array must stay clear of the PF global registers at 0x800).
	MaxQueuesPerFn = 16

	// PF-page global registers.
	PFRegBTLBFlush     = 0x800 // write: flush the BTLB (4B)
	PFRegMissPending   = 0x808 // RO: bitmap of VFs 0..63 with latched misses (8B)
	PFRegNumVFs        = 0x810 // RO: supported VF count (4B)
	PFRegFlightRecords = 0x818 // RO: flight-recorder captures to date (8B)

	// Targeted BTLB invalidation command (hypervisor-only, used after a CoW
	// break): latch a vLBA range, then write the function index to fire the
	// invalidation. Count 0 invalidates all of the function's entries.
	PFRegInvVLBA  = 0x820 // latch: first vLBA of the range (8B)
	PFRegInvCount = 0x828 // latch: block count, 0 = whole function (8B)
	PFRegInvFn    = 0x830 // write: function index; fires the invalidation (4B)

	// Queue-pair pool and tenancy observability (RO).
	PFRegQueueLeases     = 0x838 // queue pairs leased to functions (8B)
	PFRegQueueReturns    = 0x840 // queue pairs returned to the pool (8B)
	PFRegQueueLeaseFails = 0x848 // programmings rejected by an exhausted pool (8B)
	PFRegQueuesInUse     = 0x850 // queue pairs currently leased out (8B)
	PFRegShadowBatches   = 0x858 // fetch batches initiated via shadow doorbells (8B)
	PFRegMaterializedVFs = 0x860 // VFs with device state built (8B)

	// Banked miss-pending bitmaps for configurations beyond 64 VFs: bank k
	// (at PFRegMissPendingBank + 8k) covers VFs 64k .. 64k+63. Bank 0
	// aliases the legacy PFRegMissPending contents.
	PFRegMissPendingBank  = 0x880
	PFRegMissPendingBanks = 16 // register file holds up to 16 banks (1024 VFs)

	// Management page: one 64-byte block per VF, indexed by VF number - 1.
	MgmtStride      = 64
	MgmtTreeRoot    = 0x00 // extent tree root address (8B)
	MgmtMissAddr    = 0x08 // RO: missing vLBA (8B)
	MgmtMissSize    = 0x10 // RO: missing block count; reason code in the high word (8B)
	MgmtRewalk      = 0x14 // write RewalkRetry/RewalkFail (4B)
	MgmtEnable      = 0x18 // 1 = VF enabled (4B)
	MgmtDeviceSize  = 0x20 // virtual device size in blocks (8B)
	MgmtMissIsWrite = 0x28 // RO: 1 when the latched miss is a write (4B)
	MgmtWeight      = 0x2C // QoS weight for the VF multiplexer, 1..255 (4B)
	MgmtQueues      = 0x30 // active queue-pair count, 1..QueuesPerVF (4B)
	MgmtMissReason  = 0x34 // RO: reason code of the latched miss (4B)
	MgmtFetch       = 0x38 // 1 = fetch-backed VF: holes miss for materialization (4B)

	// Miss reason codes (MgmtMissReason).
	MissReasonTranslate = 0 // no mapping: hole or pruned subtree
	MissReasonCoW       = 1 // write hit a write-protected (CoW shared) extent
	MissReasonFetch     = 2 // hole on a fetch-backed VF: content must materialize

	// RewalkTree verdicts.
	RewalkRetry = 1
	RewalkFail  = 2

	// Wire sizes (the protocol definition lives in internal/ring).
	DescBytes = ring.DescBytes
	CplBytes  = ring.CplBytes
)

// BARSize reports the device BAR size: PF page + VF pages + the management
// region. The management region holds one MgmtStride-byte control block per
// VF, so it spans ceil(NumVFs/64) pages — exactly one page at the prototype's
// 64-VF configuration (the historical layout), growing with the configured
// count beyond that.
func (c *Controller) BARSize() int64 {
	return int64(c.P.NumVFs+1)*PageSize + c.mgmtPages()*PageSize
}

// mgmtPages reports how many BAR pages the management region spans.
func (c *Controller) mgmtPages() int64 {
	pages := (int64(c.P.NumVFs)*MgmtStride + PageSize - 1) / PageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// FunctionPageOffset reports the BAR offset of function idx's I/O page
// (0 = PF).
func (c *Controller) FunctionPageOffset(idx int) int64 { return int64(idx) * PageSize }

// MgmtPageOffset reports the BAR offset of the management region.
func (c *Controller) MgmtPageOffset() int64 { return int64(c.P.NumVFs+1) * PageSize }

// PCIeName implements pcie.Device.
func (c *Controller) PCIeName() string { return "nesc" }

// funcByPage resolves a BAR page to its function, materializing a VF on its
// first MMIO touch: a fresh function page is not all-zero (RegNumQueues and
// MgmtWeight have nonzero reset values), so even a read must conjure the
// register file.
func (c *Controller) funcByPage(page int) *Function {
	if page == 0 {
		return c.pf
	}
	if page >= 1 && page <= c.P.NumVFs {
		return c.VF(page - 1)
	}
	return nil
}

// queueReg decomposes a function-page offset into (queue, in-block offset)
// when it falls inside the per-queue block array.
func queueReg(reg int64) (q int, qreg int64, ok bool) {
	if reg < QueueRegBase || reg >= QueueRegBase+MaxQueuesPerFn*QueueRegStride {
		return 0, 0, false
	}
	return int((reg - QueueRegBase) / QueueRegStride), (reg - QueueRegBase) % QueueRegStride, true
}

// MMIORead implements pcie.Device.
func (c *Controller) MMIORead(off int64, size int) uint64 {
	page := int(off / PageSize)
	reg := off % PageSize
	if mo := c.MgmtPageOffset(); off >= mo {
		return c.mgmtRead(off - mo)
	}
	f := c.funcByPage(page)
	if f == nil {
		return 0
	}
	if page == 0 {
		if reg >= PFRegMissPendingBank && reg < PFRegMissPendingBank+PFRegMissPendingBanks*8 {
			return c.missPendingBank(int((reg - PFRegMissPendingBank) / 8))
		}
		switch reg {
		case PFRegMissPending:
			return c.missPendingBank(0)
		case PFRegNumVFs:
			return uint64(c.P.NumVFs)
		case PFRegFlightRecords:
			if c.Flight == nil {
				return 0
			}
			return uint64(c.Flight.Total)
		case PFRegQueueLeases:
			return uint64(c.QueueLeases)
		case PFRegQueueReturns:
			return uint64(c.QueueReturns)
		case PFRegQueueLeaseFails:
			return uint64(c.QueueLeaseFails)
		case PFRegQueuesInUse:
			return uint64(c.LeasedQueues())
		case PFRegShadowBatches:
			return uint64(c.ShadowBatches)
		case PFRegMaterializedVFs:
			return uint64(c.nMat)
		}
	}
	if q, qreg, ok := queueReg(reg); ok {
		return f.queueRead(q, qreg)
	}
	switch reg {
	case RegRingBase:
		return f.queueRead(0, QRegRingBase)
	case RegRingSize:
		return f.queueRead(0, QRegRingSize)
	case RegCplBase:
		return f.queueRead(0, QRegCplBase)
	case RegCplSeq:
		return f.queueRead(0, QRegCplSeq)
	case RegDeviceSize:
		return f.sizeBlocks
	case RegReset:
		if f.inflight > 0 {
			return 1
		}
		return 0
	case RegErrDMAFaults:
		return uint64(f.DMAFaults)
	case RegErrMedium:
		return uint64(f.MediumErrors)
	case RegErrRetries:
		return uint64(f.MediumRetries)
	case RegErrResets:
		return uint64(f.Resets)
	case RegNumQueues:
		return uint64(f.numQueues)
	case RegErrBadRing:
		return uint64(f.BadRingSizes)
	case RegErrBadDoorbell:
		return uint64(f.BadDoorbells)
	case RegErrIntegrity:
		return uint64(f.IntegrityErrors)
	case RegIntegrityFixes:
		return uint64(f.IntegrityRepairs)
	}
	return 0
}

// missPendingBank reads one 64-VF miss-pending bitmap bank without
// materializing anything: a VF with no device state cannot have a latched
// miss. The shard granularity equals the bank width, so a bank is one shard
// scan.
func (c *Controller) missPendingBank(k int) uint64 {
	if k < 0 || k >= len(c.vfShards) {
		return 0
	}
	sh := c.vfShards[k]
	if sh == nil {
		return 0
	}
	var bits uint64
	for i, f := range sh {
		if f != nil && f.missPending {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// queueRead services a read of queue q's register block. A slot with no
// queue pair leased reads as zero, exactly like a cleared queue.
func (f *Function) queueRead(q int, qreg int64) uint64 {
	if q >= f.numQueues || f.queues[q] == nil {
		return 0
	}
	fq := f.queues[q]
	switch qreg {
	case QRegRingBase:
		return uint64(fq.ringBase)
	case QRegRingSize:
		return uint64(fq.ringSize)
	case QRegCplBase:
		return uint64(fq.cplBase)
	case QRegCplSeq:
		return uint64(fq.cplSeq)
	case QRegDeadline:
		return uint64(fq.deadline)
	}
	return 0
}

// MMIOWrite implements pcie.Device. Writes to offsets outside a page's
// writable registers are silently ignored — in particular, a guest writing
// management offsets through its own VF page has no effect.
func (c *Controller) MMIOWrite(off int64, size int, val uint64) {
	page := int(off / PageSize)
	reg := off % PageSize
	if mo := c.MgmtPageOffset(); off >= mo {
		c.mgmtWrite(off-mo, val)
		return
	}
	f := c.funcByPage(page)
	if f == nil {
		return
	}
	if page == 0 {
		switch reg {
		case PFRegBTLBFlush:
			c.btlb.flush()
			return
		case PFRegInvVLBA:
			c.invVLBA = val
			return
		case PFRegInvCount:
			c.invCount = val
			return
		case PFRegInvFn:
			c.BTLBInvalidations += int64(c.btlb.invalidateRange(int(val), c.invVLBA, c.invCount))
			return
		}
	}
	if q, qreg, ok := queueReg(reg); ok {
		f.queueWrite(q, qreg, val)
		return
	}
	switch reg {
	case RegRingBase:
		f.queueWrite(0, QRegRingBase, val)
	case RegRingSize:
		f.queueWrite(0, QRegRingSize, val)
	case RegCplBase:
		f.queueWrite(0, QRegCplBase, val)
	case RegDoorbell:
		f.queueWrite(0, QRegDoorbell, val)
	case RegReset:
		if val == 1 {
			c.resetFunction(f)
		}
	}
}

// queueWrite services a write to queue q's register block, validating ring
// sizes and doorbell coherence (the AER-style counters make rejections
// observable instead of silent).
func (f *Function) queueWrite(q int, qreg int64, val uint64) {
	if q >= f.numQueues {
		if qreg == QRegDoorbell {
			f.BadDoorbells++
			f.c.BadDoorbells++
		}
		return
	}
	fq := f.queues[q]
	if fq == nil {
		switch qreg {
		case QRegRingBase, QRegRingSize, QRegCplBase, QRegShadow, QRegDeadline:
			// First programming of this slot: lease queue-pair state from
			// the device-wide pool. An exhausted pool ignores the write (the
			// slot keeps reading zero, which the driver can observe).
			if fq = f.c.leaseQueue(f, q); fq == nil {
				return
			}
		case QRegDoorbell:
			// A doorbell cannot conjure a queue: no ring is programmed.
			f.BadDoorbells++
			f.c.BadDoorbells++
			return
		default:
			return
		}
	}
	switch qreg {
	case QRegRingBase:
		fq.ringBase = int64(val)
	case QRegRingSize:
		if !ring.ValidSize(val) {
			// Zero or non-power-of-two sizes would corrupt the free-running
			// index arithmetic; reject and count.
			f.BadRingSizes++
			f.c.BadRingSizes++
			return
		}
		fq.ringSize = uint32(val)
		// (Re)programming the ring resets the queue cursors, so a new
		// owner of the function starts from a clean producer/consumer
		// state.
		fq.consumed = 0
		fq.cplSeq = 0
	case QRegCplBase:
		fq.cplBase = int64(val)
	case QRegDoorbell:
		if fq.ringSize == 0 || !ring.DoorbellValid(uint32(val), fq.consumed, fq.ringSize) {
			// Unprogrammed ring, or a producer index claiming more new
			// descriptors than the ring holds: honoring it would silently
			// wrap live descriptors.
			f.BadDoorbells++
			f.c.BadDoorbells++
			return
		}
		fq.doorbells.TryPush(uint32(val))
		f.fetchW.Release()
	case QRegShadow:
		fq.shadowBase = int64(val)
	case QRegDeadline:
		// Relative per-request deadline budget: every request fetched from
		// this queue is stamped fetch-time + budget, and admission control
		// fast-fails it with StatusBusy once the stamp cannot be met. 0
		// disarms (the reset state), keeping deadline-free schedules intact.
		fq.deadline = sim.Time(val)
	}
}

func (c *Controller) mgmtVF(reg int64) (*Function, int64) {
	idx := int(reg / MgmtStride)
	if idx < 0 || idx >= c.P.NumVFs {
		return nil, 0
	}
	// Management access is a first-class materialization point: the
	// hypervisor provisioning a VF touches its control block before any
	// guest sees the function page.
	return c.VF(idx), reg % MgmtStride
}

func (c *Controller) mgmtRead(reg int64) uint64 {
	f, r := c.mgmtVF(reg)
	if f == nil {
		return 0
	}
	switch r {
	case MgmtTreeRoot:
		return uint64(f.treeRoot)
	case MgmtMissAddr:
		return f.missAddr
	case MgmtMissSize:
		// High word carries the reason code so the miss handler learns the
		// size and the reason in one read (keeping the fault-free MMIO
		// schedule identical to the pre-CoW device).
		return uint64(f.missSize) | uint64(f.missReason)<<32
	case MgmtEnable:
		if f.enabled {
			return 1
		}
		return 0
	case MgmtDeviceSize:
		return f.sizeBlocks
	case MgmtMissIsWrite:
		if f.missIsWrite {
			return 1
		}
		return 0
	case MgmtMissReason:
		return uint64(f.missReason)
	case MgmtWeight:
		return uint64(f.weight)
	case MgmtQueues:
		return uint64(f.numQueues)
	case MgmtFetch:
		if f.fetchBacked {
			return 1
		}
		return 0
	}
	return 0
}

func (c *Controller) mgmtWrite(reg int64, val uint64) {
	f, r := c.mgmtVF(reg)
	if f == nil {
		return
	}
	switch r {
	case MgmtTreeRoot:
		f.treeRoot = int64(val)
	case MgmtRewalk:
		f.rewalkVerdict = uint32(val)
		f.missPending = false
		f.rewalk.Fire()
	case MgmtEnable:
		was := f.enabled
		f.enabled = val == 1
		if was && !f.enabled {
			// Disabling a VF drops its cached translations and returns every
			// leased queue pair to the device-wide pool; the hypervisor
			// quiesces the function before disabling it. Return happens only
			// here — never on FLR — so a queue can be re-leased only after
			// its tenant is deprovisioned.
			c.btlb.flushFn(f.idx)
			for qi := range f.queues {
				c.returnQueue(f, qi)
			}
		}
	case MgmtDeviceSize:
		f.sizeBlocks = val
	case MgmtWeight:
		if val >= 1 && val <= 255 {
			f.weight = uint32(val)
		}
	case MgmtQueues:
		// The hypervisor programs the VF's active queue-pair count at
		// creation, bounded by the device capability.
		if val >= 1 && val <= uint64(len(f.queues)) {
			f.numQueues = int(val)
		}
	case MgmtFetch:
		// Fetch-backed VFs (forked golden images) turn every hole — read or
		// write — into a miss so the hypervisor can materialize the block's
		// content from the cas tier. The register is written only when the
		// tier is in use, keeping pre-cas MMIO schedules identical.
		f.fetchBacked = val == 1
	}
}

// EncodeDescriptor writes a request descriptor in the device wire format
// (re-exported from internal/ring; drivers and the device share one layout).
func EncodeDescriptor(b []byte, op, id uint32, lba uint64, count uint32, buf int64) {
	ring.EncodeDescriptor(b, op, id, lba, count, buf)
}

// EncodeCompletion writes a completion entry (used by the device; exported
// for driver-side tests).
func EncodeCompletion(b []byte, id, status, seq uint32) {
	ring.EncodeCompletion(b, id, status, seq)
}

// DecodeCompletion parses a completion entry.
func DecodeCompletion(b []byte) (id, status, seq uint32) {
	return ring.DecodeCompletion(b)
}
