package core

import (
	"math/rand"
	"testing"

	"nesc/internal/extent"
	"nesc/internal/sim"
)

// Queue-pair pool, active-list, and lazy-materialization behaviour (the
// massive-tenancy refactor): leases are a bounded device resource, FLR
// never returns them, and configured-but-untouched VFs cost nothing.

func poolParams(poolSize int) Params {
	p := DefaultParams()
	p.NumVFs = 4
	p.QueuePoolSize = poolSize
	return p
}

func TestQueuePoolExhaustion(t *testing.T) {
	r := newRig(t, poolParams(2))
	r.eng.Go("main", func(p *sim.Proc) {
		// Identity trees for two VFs over disjoint ranges.
		tr0 := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 64}})
		tr1 := r.buildTree([]extent.Run{{Logical: 0, Physical: 64, Count: 64}})
		r.setVF(p, 0, tr0.Root(), 64)
		r.setVF(p, 1, tr1.Root(), 64)

		// PF + VF0 drain the two-entry pool.
		pf := r.openFunction(p, 0)
		d0 := r.openFunction(p, 1)
		if got := r.mmioR(p, r.bar+r.ctl.MgmtPageOffset()); got == 0 {
			// Non-posted read above flushed the posted programming writes;
			// the value itself (VF0's tree root) is irrelevant.
			_ = got
		}
		if leased := r.mmioR(p, r.bar+PFRegQueuesInUse); leased != 2 {
			t.Fatalf("leased %d queue pairs after PF+VF0, want 2", leased)
		}

		// VF1's programming writes must be rejected by the exhausted pool:
		// no lease, a counted failure, and a later doorbell is incoherent
		// (AER counter, not a panic or a conjured queue).
		d1 := r.openFunction(p, 2)
		if fails := r.mmioR(p, r.bar+PFRegQueueLeaseFails); fails == 0 {
			t.Error("pool exhaustion did not count a lease failure")
		}
		if leased := r.mmioR(p, r.bar+PFRegQueuesInUse); leased != 2 {
			t.Errorf("leased %d queue pairs after rejected programming, want 2", leased)
		}
		r.mmioW(p, d1.pageOff+RegDoorbell, 1)
		if bad := r.mmioR(p, d1.pageOff+RegErrBadDoorbell); bad == 0 {
			t.Error("doorbell on an unleased queue did not count as incoherent")
		}

		// PF and VF0 still work end to end on their leased queues.
		buf := r.mem.MustAlloc(1024, 64)
		if st := pf.io(p, OpWrite, 0, 1, buf); st != StatusOK {
			t.Fatalf("PF write status %d", st)
		}
		if st := d0.io(p, OpWrite, 0, 1, buf); st != StatusOK {
			t.Fatalf("VF0 write status %d", st)
		}

		// Disabling VF0 returns its queue pair; VF1 can then lease it.
		r.mmioW(p, r.bar+r.ctl.MgmtPageOffset()+0*MgmtStride+MgmtEnable, 0)
		if leased := r.mmioR(p, r.bar+PFRegQueuesInUse); leased != 1 {
			t.Fatalf("leased %d queue pairs after VF0 disable, want 1", leased)
		}
		d1 = r.openFunction(p, 2)
		if leased := r.mmioR(p, r.bar+PFRegQueuesInUse); leased != 2 {
			t.Fatalf("VF1 failed to lease the returned queue pair")
		}
		if st := d1.io(p, OpWrite, 3, 1, buf); st != StatusOK {
			t.Fatalf("VF1 write status %d after re-lease", st)
		}
	})
	r.run()
}

func TestFLRKeepsLeaseDisableReturnsIt(t *testing.T) {
	r := newRig(t, poolParams(0))
	r.eng.Go("main", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 64}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openFunction(p, 1)
		buf := r.mem.MustAlloc(1024, 64)
		if st := d.io(p, OpWrite, 0, 1, buf); st != StatusOK {
			t.Fatalf("write status %d", st)
		}
		leasedBefore := r.mmioR(p, r.bar+PFRegQueuesInUse)

		// FLR mid-lease: kick off a request and reset before reaping its
		// completion. The function drains without panicking and the queue
		// pair stays leased — FLR is a tenant-local event, not a
		// deprovision.
		var desc [DescBytes]byte
		d.nextID++
		EncodeDescriptor(desc[:], OpWrite, d.nextID, 8, 1, buf)
		if err := r.mem.Write(d.ringBase+int64(d.prod%testRing)*DescBytes, desc[:]); err != nil {
			t.Fatal(err)
		}
		d.prod++
		r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod))
		r.mmioW(p, d.pageOff+RegReset, 1)
		for r.mmioR(p, d.pageOff+RegReset) != 0 {
			p.Sleep(sim.Microsecond)
		}
		if leased := r.mmioR(p, r.bar+PFRegQueuesInUse); leased != leasedBefore {
			t.Errorf("FLR changed leased queues %d -> %d; reset must not return leases", leasedBefore, leased)
		}
		if returns := r.mmioR(p, r.bar+PFRegQueueReturns); returns != 0 {
			t.Errorf("FLR returned %d queue pairs to the pool", returns)
		}

		// Disable deprovisions: the queue pair goes back, and a stale
		// doorbell from the departed tenant is counted, not honored.
		r.mmioW(p, r.bar+r.ctl.MgmtPageOffset()+0*MgmtStride+MgmtEnable, 0)
		if returns := r.mmioR(p, r.bar+PFRegQueueReturns); returns != 1 {
			t.Fatalf("disable returned %d queue pairs, want 1", returns)
		}
		badBefore := r.mmioR(p, d.pageOff+RegErrBadDoorbell)
		r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod+1))
		if bad := r.mmioR(p, d.pageOff+RegErrBadDoorbell); bad != badBefore+1 {
			t.Errorf("doorbell to a returned queue: bad-doorbell counter %d -> %d, want +1", badBefore, bad)
		}

		// Re-enable and re-program: the tenant's successor gets a clean
		// queue and a working data path.
		r.setVF(p, 0, tr.Root(), 64)
		d = r.openFunction(p, 1)
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusOK {
			t.Fatalf("read status %d after re-lease", st)
		}
	})
	r.run()
}

func TestActiveListInvariant(t *testing.T) {
	// Random churn across every VF: if a scheduler ever dropped a function
	// with work still queued, its requests would hang and the run would
	// never quiesce. At quiesce the active bitmaps must be empty.
	r := newRig(t, poolParams(0))
	done := 0
	const vfs = 4
	const iosPerVF = 25
	r.eng.Go("main", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < vfs; i++ {
			tr := r.buildTree([]extent.Run{{Logical: 0, Physical: uint64(i) * 256, Count: 256}})
			r.setVF(p, i, tr.Root(), 256)
		}
		wg := sim.NewWaitGroup(r.eng)
		for i := 0; i < vfs; i++ {
			i := i
			seed := rng.Int63()
			wg.Add(1)
			r.eng.Go("churn", func(q *sim.Proc) {
				defer wg.Done()
				lrng := rand.New(rand.NewSource(seed))
				d := r.openFunction(q, i+1)
				buf := r.mem.MustAlloc(8*1024, 64)
				for k := 0; k < iosPerVF; k++ {
					op := uint32(OpRead)
					if lrng.Intn(2) == 0 {
						op = OpWrite
					}
					count := uint32(1 + lrng.Intn(4))
					lba := uint64(lrng.Intn(200))
					if st := d.io(q, op, lba, count, buf); st != StatusOK {
						t.Errorf("vf%d io %d status %d", i, k, st)
						return
					}
					done++
				}
			})
		}
		wg.WaitFor(p)
	})
	r.run()
	if done != vfs*iosPerVF {
		t.Fatalf("completed %d ios, want %d — a function was lost with work pending", done, vfs*iosPerVF)
	}
	for w, bits := range r.ctl.muxActive {
		if bits != 0 {
			t.Errorf("mux active bitmap word %d = %#x at quiesce, want 0", w, bits)
		}
	}
	for w, bits := range r.ctl.dtuActive {
		if bits != 0 {
			t.Errorf("dtu active bitmap word %d = %#x at quiesce, want 0", w, bits)
		}
	}
}

func TestLazyMaterializationAtScale(t *testing.T) {
	p := DefaultParams()
	p.NumVFs = 1024
	r := newRig(t, p)
	if got := r.ctl.MaterializedVFs(); got != 0 {
		t.Fatalf("%d VFs materialized after construction, want 0", got)
	}
	base := r.ctl.StateFootprint()
	if base > 16*1024 {
		t.Errorf("idle 1024-VF controller models %d bytes of state, want under 16 KB", base)
	}
	// A single MMIO touch on one VF's page conjures exactly that VF.
	r.ctl.MMIORead(r.ctl.FunctionPageOffset(500+1)+RegNumQueues, 8)
	if got := r.ctl.MaterializedVFs(); got != 1 {
		t.Errorf("%d VFs materialized after touching one page, want 1", got)
	}
	if grown := r.ctl.StateFootprint() - base; grown <= 0 {
		t.Errorf("state footprint did not grow with materialization (%d)", grown)
	}
	r.eng.Run()
	r.eng.Shutdown()
}
