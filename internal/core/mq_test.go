package core

import (
	"bytes"
	"testing"

	"nesc/internal/extent"
	"nesc/internal/pcie"
	"nesc/internal/sim"
	"nesc/internal/trace"
)

func mqParams(queues int) Params {
	p := DefaultParams()
	p.NumVFs = 4
	p.QueuesPerVF = queues
	return p
}

// queueBlock computes the BAR offset of queue q's register block within a
// function page.
func queueBlock(q int) int64 { return QueueRegBase + int64(q)*QueueRegStride }

// openQueue programs queue q of a function, acting as a multi-queue driver.
// The in-block register offsets deliberately equal the legacy per-function
// offsets (QRegRingBase==RegRingBase, ..., QRegDoorbell==RegDoorbell), so a
// dev whose pageOff points at the queue block drives the queue unchanged.
func (r *rig) openQueue(p *sim.Proc, fnIdx, q int) *dev {
	d := &dev{
		r:        r,
		pageOff:  r.bar + r.ctl.FunctionPageOffset(fnIdx) + queueBlock(q),
		ringBase: r.mem.MustAlloc(testRing*DescBytes, 64),
		cplBase:  r.mem.MustAlloc(testRing*CplBytes, 64),
	}
	if err := r.mem.Zero(d.ringBase, testRing*DescBytes); err != nil {
		r.t.Fatal(err)
	}
	if err := r.mem.Zero(d.cplBase, testRing*CplBytes); err != nil {
		r.t.Fatal(err)
	}
	if fnIdx == 0 {
		d.fn = r.ctl.PF()
	} else {
		d.fn = r.ctl.VF(fnIdx - 1)
	}
	r.mmioW(p, d.pageOff+QRegRingBase, uint64(d.ringBase))
	r.mmioW(p, d.pageOff+QRegRingSize, testRing)
	r.mmioW(p, d.pageOff+QRegCplBase, uint64(d.cplBase))
	return d
}

func TestRingSizeValidation(t *testing.T) {
	r := newRig(t, smallParams())
	r.eng.Go("host", func(p *sim.Proc) {
		page := r.bar + r.ctl.FunctionPageOffset(0)
		for _, bad := range []uint64{0, 3, 100, 1 << 20} {
			r.mmioW(p, page+RegRingSize, bad)
		}
		r.mmioW(p, page+RegRingSize, 64) // valid
		if got := r.mmioR(p, page+RegErrBadRing); got != 4 {
			t.Errorf("RegErrBadRing = %d, want 4", got)
		}
		if got := r.mmioR(p, page+RegRingSize); got != 64 {
			t.Errorf("RegRingSize = %d, want 64 (bad writes must not stick)", got)
		}
	})
	r.run()
	if r.ctl.BadRingSizes != 4 {
		t.Errorf("controller BadRingSizes = %d, want 4", r.ctl.BadRingSizes)
	}
}

func TestDoorbellValidation(t *testing.T) {
	r := newRig(t, mqParams(2))
	r.eng.Go("host", func(p *sim.Proc) {
		page := r.bar + r.ctl.FunctionPageOffset(1)
		base := r.mem.MustAlloc(testRing*DescBytes, 64)
		r.mmioW(p, page+RegRingBase, uint64(base))
		r.mmioW(p, page+RegRingSize, testRing)
		// Producer index claiming more than one full ring of descriptors.
		r.mmioW(p, page+RegDoorbell, testRing+1)
		// Doorbell on an unprogrammed queue (queue 1 has no ring size).
		r.mmioW(p, page+queueBlock(1)+QRegDoorbell, 1)
		// Doorbell on a queue beyond the active count.
		r.mmioW(p, page+queueBlock(5)+QRegDoorbell, 1)
		if got := r.mmioR(p, page+RegErrBadDoorbell); got != 3 {
			t.Errorf("RegErrBadDoorbell = %d, want 3", got)
		}
		// A coherent doorbell still works after the rejections.
		r.mmioW(p, page+RegDoorbell, 0)
	})
	r.run()
	vf := r.ctl.VF(0)
	if vf.BadDoorbells != 3 || r.ctl.BadDoorbells != 3 {
		t.Errorf("BadDoorbells fn=%d ctl=%d, want 3/3", vf.BadDoorbells, r.ctl.BadDoorbells)
	}
	// None of the bad doorbells may have reached the fetch stage.
	if vf.Reqs != 0 {
		t.Errorf("fetched %d requests from rejected doorbells", vf.Reqs)
	}
}

func TestMultiQueueIORoundTrip(t *testing.T) {
	r := newRig(t, mqParams(4))
	// Completions on queue q>0 arrive on vector 1+q; re-route every
	// completion vector at the test MSI dispatcher.
	r.fab.SetMSIHandler(func(from pcie.FnID, vec uint8) {
		if _, ok := QueueOfVector(vec); ok {
			if s := r.cplSignals[from]; s != nil {
				s.Fire()
			}
		}
	})
	done := false
	r.eng.Go("host", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 64}})
		r.setVF(p, 0, tr.Root(), 64)
		d := r.openQueue(p, 1, 2)
		page := r.bar + r.ctl.FunctionPageOffset(1)
		if got := r.mmioR(p, page+RegNumQueues); got != 4 {
			t.Errorf("RegNumQueues = %d, want 4", got)
		}
		buf := r.mem.MustAlloc(4096, 64)
		src := bytes.Repeat([]byte{0xC3}, 4096)
		if err := r.mem.Write(buf, src); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpWrite, 8, 4, buf); st != StatusOK {
			t.Errorf("write on queue 2: status %d", st)
		}
		if err := r.mem.Zero(buf, 4096); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpRead, 8, 4, buf); st != StatusOK {
			t.Errorf("read on queue 2: status %d", st)
		}
		got := make([]byte, 4096)
		if err := r.mem.Read(buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("queue-2 round trip mismatch")
		}
		// The traffic ran on queue 2 alone.
		if seq := r.mmioR(p, page+queueBlock(2)+QRegCplSeq); seq != 2 {
			t.Errorf("queue 2 cplSeq = %d, want 2", seq)
		}
		if seq := r.mmioR(p, page+RegCplSeq); seq != 0 {
			t.Errorf("queue 0 cplSeq = %d, want 0", seq)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("host process deadlocked")
	}
	vf := r.ctl.VF(0)
	if vf.QueueReqs(2) != 2 || vf.QueueReqs(0) != 0 {
		t.Errorf("per-queue requests q2=%d q0=%d, want 2/0", vf.QueueReqs(2), vf.QueueReqs(0))
	}
}

// TestIntraVFQueueFairness drives every queue of one VF with a backlog of
// single-descriptor doorbells rung in zero virtual time, so the device's
// fetch stage sees all queues pending at once. The fetch order must be
// strict round-robin across the function's queues.
func TestIntraVFQueueFairness(t *testing.T) {
	const queues, perQueue = 4, 4
	r := newRig(t, mqParams(queues))
	r.ctl.Tracer = trace.NewRing(256)
	r.eng.Go("host", func(p *sim.Proc) {
		tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 256}})
		r.setVF(p, 0, tr.Root(), 256)
		page := r.bar + r.ctl.FunctionPageOffset(1)
		buf := r.mem.MustAlloc(int64(r.ctl.P.BlockSize), 64)
		// Program all queues and stage every descriptor: queue q reads LBA
		// q*16+i so the trace identifies the owning queue.
		rings := make([]int64, queues)
		for q := 0; q < queues; q++ {
			rings[q] = r.mem.MustAlloc(testRing*DescBytes, 64)
			cpl := r.mem.MustAlloc(testRing*CplBytes, 64)
			if err := r.mem.Zero(rings[q], testRing*DescBytes); err != nil {
				t.Fatal(err)
			}
			if err := r.mem.Zero(cpl, testRing*CplBytes); err != nil {
				t.Fatal(err)
			}
			blk := page + queueBlock(q)
			r.mmioW(p, blk+QRegRingBase, uint64(rings[q]))
			r.mmioW(p, blk+QRegRingSize, testRing)
			r.mmioW(p, blk+QRegCplBase, uint64(cpl))
			for i := 0; i < perQueue; i++ {
				var desc [DescBytes]byte
				EncodeDescriptor(desc[:], OpRead, uint32(q*perQueue+i+1), uint64(q*16+i), 1, buf)
				if err := r.mem.Write(rings[q]+int64(i)*DescBytes, desc[:]); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Ring every doorbell with no CPU cost (p=nil skips the issue
		// sleep): all of them land before the fetch stage first wakes, so
		// the observed order isolates the device's scheduling policy.
		for i := 1; i <= perQueue; i++ {
			for q := 0; q < queues; q++ {
				if err := r.fab.MMIOWrite(nil, page+queueBlock(q)+QRegDoorbell, 4, uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
	})
	r.run()
	var order []int
	for _, e := range r.ctl.Tracer.Events() {
		if e.Kind == trace.KindFetch && e.Fn == 1 {
			order = append(order, int(e.LBA)/16)
		}
	}
	if len(order) != queues*perQueue {
		t.Fatalf("fetched %d descriptors, want %d (order %v)", len(order), queues*perQueue, order)
	}
	for i, q := range order {
		if q != i%queues {
			t.Fatalf("fetch %d came from queue %d, want strict round-robin (order %v)", i, q, order)
		}
	}
	vf := r.ctl.VF(0)
	for q := 0; q < queues; q++ {
		if vf.QueueReqs(q) != perQueue {
			t.Errorf("queue %d served %d requests, want %d", q, vf.QueueReqs(q), perQueue)
		}
	}
}

func TestMgmtQueueCount(t *testing.T) {
	r := newRig(t, mqParams(8))
	r.eng.Go("host", func(p *sim.Proc) {
		mgmt := r.bar + r.ctl.MgmtPageOffset()
		page := r.bar + r.ctl.FunctionPageOffset(1)
		if got := r.mmioR(p, page+RegNumQueues); got != 8 {
			t.Errorf("RegNumQueues = %d, want 8 (device capability)", got)
		}
		// The hypervisor programs the VF down to 2 active queues.
		r.mmioW(p, mgmt+MgmtQueues, 2)
		if got := r.mmioR(p, page+RegNumQueues); got != 2 {
			t.Errorf("RegNumQueues = %d, want 2 after MgmtQueues", got)
		}
		// Out-of-range programmings are ignored.
		r.mmioW(p, mgmt+MgmtQueues, 0)
		r.mmioW(p, mgmt+MgmtQueues, 99)
		if got := r.mmioR(p, page+RegNumQueues); got != 2 {
			t.Errorf("RegNumQueues = %d, want 2 after bad programmings", got)
		}
		// Registers of deactivated queues read as zero.
		r.mmioW(p, page+queueBlock(1)+QRegRingSize, testRing)
		if got := r.mmioR(p, page+queueBlock(1)+QRegRingSize); got != testRing {
			t.Errorf("queue 1 ring size = %d, want %d", got, testRing)
		}
		if got := r.mmioR(p, page+queueBlock(5)+QRegRingSize); got != 0 {
			t.Errorf("inactive queue 5 ring size = %d, want 0", got)
		}
	})
	r.run()
}
