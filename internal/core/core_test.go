package core

import (
	"bytes"
	"math/rand"
	"testing"

	"nesc/internal/blockdev"
	"nesc/internal/extent"
	"nesc/internal/hostmem"
	"nesc/internal/pcie"
	"nesc/internal/sim"
)

// rig wires a controller to a fabric plus the minimal host-side glue the
// register-level tests need: an MSI dispatcher, a test block driver, and a
// mock hypervisor miss handler.
type rig struct {
	t   *testing.T
	eng *sim.Engine
	mem *hostmem.Memory
	fab *pcie.Fabric
	ctl *Controller
	bar int64

	cplSignals map[pcie.FnID]*sim.Signal
	// missHandler runs as a fresh process per miss interrupt.
	missHandler func(p *sim.Proc)
	missMSIs    int
}

func newRig(t *testing.T, p Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	mem := hostmem.New(32 << 20)
	fab := pcie.New(eng, mem, pcie.DefaultParams())
	store := blockdev.NewStore(p.BlockSize, 4096)
	medium := blockdev.NewMedium(eng, store, blockdev.DefaultMediumParams())
	ctl, err := New(eng, fab, medium, p)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, eng: eng, mem: mem, fab: fab, ctl: ctl, cplSignals: map[pcie.FnID]*sim.Signal{}}
	// BAR base: the controller is the first (only) mapped device.
	r.bar = 0x1000
	fab.SetMSIHandler(func(from pcie.FnID, vec uint8) {
		switch vec {
		case VecCompletion:
			if s := r.cplSignals[from]; s != nil {
				s.Fire()
			}
		case VecMiss:
			r.missMSIs++
			if r.missHandler != nil {
				eng.Go("hyp-miss", r.missHandler)
			}
		}
	})
	return r
}

func (r *rig) run() {
	r.eng.Run()
	r.eng.Shutdown()
}

// dev is a minimal block driver bound to one function.
type dev struct {
	r        *rig
	fn       *Function
	pageOff  int64
	ringBase int64
	cplBase  int64
	prod     uint32
	lastSeq  uint32
	nextID   uint32
}

const testRing = 32

// openFunction programs a function's rings, acting as the guest (or
// hypervisor) driver.
func (r *rig) openFunction(p *sim.Proc, fnIdx int) *dev {
	d := &dev{
		r:        r,
		pageOff:  r.bar + r.ctl.FunctionPageOffset(fnIdx),
		ringBase: r.mem.MustAlloc(testRing*DescBytes, 64),
		cplBase:  r.mem.MustAlloc(testRing*CplBytes, 64),
	}
	// Drivers must clear their rings: allocations may recycle memory.
	if err := r.mem.Zero(d.ringBase, testRing*DescBytes); err != nil {
		r.t.Fatal(err)
	}
	if err := r.mem.Zero(d.cplBase, testRing*CplBytes); err != nil {
		r.t.Fatal(err)
	}
	if fnIdx == 0 {
		d.fn = r.ctl.PF()
	} else {
		d.fn = r.ctl.VF(fnIdx - 1)
	}
	r.mmioW(p, d.pageOff+RegRingBase, uint64(d.ringBase))
	r.mmioW(p, d.pageOff+RegRingSize, testRing)
	r.mmioW(p, d.pageOff+RegCplBase, uint64(d.cplBase))
	return d
}

func (r *rig) mmioW(p *sim.Proc, addr int64, val uint64) {
	if err := r.fab.MMIOWrite(p, addr, 8, val); err != nil {
		r.t.Error(err)
	}
}

func (r *rig) mmioR(p *sim.Proc, addr int64) uint64 {
	v, err := r.fab.MMIORead(p, addr, 8)
	if err != nil {
		r.t.Error(err)
	}
	return v
}

// io submits one request and blocks until its completion arrives, returning
// the completion status.
func (d *dev) io(p *sim.Proc, op uint32, lba uint64, count uint32, buf int64) uint32 {
	r := d.r
	d.nextID++
	id := d.nextID
	var desc [DescBytes]byte
	EncodeDescriptor(desc[:], op, id, lba, count, buf)
	slot := int64(d.prod % testRing)
	if err := r.mem.Write(d.ringBase+slot*DescBytes, desc[:]); err != nil {
		r.t.Fatal(err)
	}
	d.prod++
	r.mmioW(p, d.pageOff+RegDoorbell, uint64(d.prod))
	// Wait for a completion with our seq.
	for {
		entry := make([]byte, CplBytes)
		if err := r.mem.Read(d.cplBase+int64(d.lastSeq%testRing)*CplBytes, entry); err != nil {
			r.t.Fatal(err)
		}
		gotID, status, seq := DecodeCompletion(entry)
		if seq == d.lastSeq+1 {
			d.lastSeq = seq
			if gotID != id {
				r.t.Errorf("completion for id %d, want %d", gotID, id)
			}
			return status
		}
		s := sim.NewSignal(r.eng)
		r.cplSignals[d.fn.ID()] = s
		s.Await(p)
	}
}

// setVF programs a VF's management block (hypervisor side).
func (r *rig) setVF(p *sim.Proc, vfIdx int, treeRoot int64, sizeBlocks uint64) {
	mgmt := r.bar + r.ctl.MgmtPageOffset() + int64(vfIdx)*MgmtStride
	r.mmioW(p, mgmt+MgmtTreeRoot, uint64(treeRoot))
	r.mmioW(p, mgmt+MgmtDeviceSize, sizeBlocks)
	r.mmioW(p, mgmt+MgmtEnable, 1)
}

func (r *rig) buildTree(runs []extent.Run) *extent.Tree {
	tr, err := extent.Build(r.mem, runs, r.ctl.P.TreeFanout)
	if err != nil {
		r.t.Fatal(err)
	}
	return tr
}

func smallParams() Params {
	p := DefaultParams()
	p.NumVFs = 4
	return p
}

func TestPFReadWriteRoundTrip(t *testing.T) {
	r := newRig(t, smallParams())
	buf := r.mem.MustAlloc(8192, 64)
	done := false
	r.eng.Go("host", func(p *sim.Proc) {
		d := r.openFunction(p, 0)
		src := bytes.Repeat([]byte{0x5A}, 8192)
		if err := r.mem.Write(buf, src); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpWrite, 100, 8, buf); st != StatusOK {
			t.Errorf("write status %d", st)
		}
		if err := r.mem.Zero(buf, 8192); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpRead, 100, 8, buf); st != StatusOK {
			t.Errorf("read status %d", st)
		}
		got := make([]byte, 8192)
		if err := r.mem.Read(buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("PF round trip mismatch")
		}
		// The data must physically live at pLBA 100.
		sl, _ := r.ctl.Medium.Store().Slice(100, 8)
		if !bytes.Equal(sl, src) {
			t.Error("data not at pLBA 100")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("host process deadlocked")
	}
}

func TestVFTranslatedIO(t *testing.T) {
	r := newRig(t, smallParams())
	// vLBA [0,8) -> pLBA [500,508); vLBA [8,16) -> pLBA [200,208).
	tr := r.buildTree([]extent.Run{
		{Logical: 0, Physical: 500, Count: 8},
		{Logical: 8, Physical: 200, Count: 8},
	})
	buf := r.mem.MustAlloc(16*1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 16)
		d := r.openFunction(p, 1)
		src := make([]byte, 16*1024)
		rand.New(rand.NewSource(1)).Read(src)
		if err := r.mem.Write(buf, src); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpWrite, 0, 16, buf); st != StatusOK {
			t.Errorf("write status %d", st)
		}
		// Physical placement respects the extent map.
		lo, _ := r.ctl.Medium.Store().Slice(500, 8)
		hi, _ := r.ctl.Medium.Store().Slice(200, 8)
		if !bytes.Equal(lo, src[:8192]) || !bytes.Equal(hi, src[8192:]) {
			t.Error("translated write landed at wrong pLBAs")
		}
		if err := r.mem.Zero(buf, 16*1024); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpRead, 0, 16, buf); st != StatusOK {
			t.Errorf("read status %d", st)
		}
		got := make([]byte, 16*1024)
		if err := r.mem.Read(buf, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, src) {
			t.Error("VF round trip mismatch")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("guest deadlocked")
	}
}

func TestVFIsolation(t *testing.T) {
	r := newRig(t, smallParams())
	tr1 := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 4}})
	tr2 := r.buildTree([]extent.Run{{Logical: 0, Physical: 300, Count: 4}})
	buf := r.mem.MustAlloc(4096, 64)
	done := false
	r.eng.Go("guests", func(p *sim.Proc) {
		r.setVF(p, 0, tr1.Root(), 4)
		r.setVF(p, 1, tr2.Root(), 4)
		d1 := r.openFunction(p, 1)
		d2 := r.openFunction(p, 2)
		// VF2 pre-writes its blocks.
		secret := bytes.Repeat([]byte{0xEE}, 4096)
		if err := r.mem.Write(buf, secret); err != nil {
			t.Fatal(err)
		}
		if st := d2.io(p, OpWrite, 0, 4, buf); st != StatusOK {
			t.Errorf("vf2 write status %d", st)
		}
		// VF1 writes everything it can address.
		if err := r.mem.Write(buf, bytes.Repeat([]byte{0x11}, 4096)); err != nil {
			t.Fatal(err)
		}
		if st := d1.io(p, OpWrite, 0, 4, buf); st != StatusOK {
			t.Errorf("vf1 write status %d", st)
		}
		// VF1 cannot reach past its device size.
		if st := d1.io(p, OpRead, 4, 1, buf); st != StatusOutOfRange {
			t.Errorf("out-of-range read status %d", st)
		}
		// VF2's physical blocks are untouched by VF1's writes.
		sl, _ := r.ctl.Medium.Store().Slice(300, 4)
		if !bytes.Equal(sl, secret) {
			t.Error("isolation violated: VF1 affected VF2's blocks")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestHoleReadReturnsZeros(t *testing.T) {
	r := newRig(t, smallParams())
	// Only vLBA 2 is mapped; 0,1,3 are holes.
	tr := r.buildTree([]extent.Run{{Logical: 2, Physical: 50, Count: 1}})
	buf := r.mem.MustAlloc(4096, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 4)
		d := r.openFunction(p, 1)
		// Dirty the buffer and the mapped block.
		if err := r.mem.Write(buf, bytes.Repeat([]byte{0xFF}, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := r.ctl.Medium.Store().WriteBlocks(50, bytes.Repeat([]byte{0xAB}, 1024)); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpRead, 0, 4, buf); st != StatusOK {
			t.Errorf("read status %d", st)
		}
		got := make([]byte, 4096)
		if err := r.mem.Read(buf, got); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2048; i++ {
			if got[i] != 0 {
				t.Fatalf("hole byte %d = %#x", i, got[i])
			}
		}
		for i := 2048; i < 3072; i++ {
			if got[i] != 0xAB {
				t.Fatalf("mapped byte %d = %#x", i, got[i])
			}
		}
		for i := 3072; i < 4096; i++ {
			if got[i] != 0 {
				t.Fatalf("hole byte %d = %#x", i, got[i])
			}
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestWriteMissAllocationFlow(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 10, Count: 2}})
	mgmt := r.bar + r.ctl.MgmtPageOffset()
	// Mock hypervisor: on miss, map the missing range to pLBA 600+ and
	// signal a rewalk.
	r.missHandler = func(p *sim.Proc) {
		pending := r.mmioR(p, r.bar+PFRegMissPending)
		if pending&1 == 0 {
			t.Error("miss bitmap does not report VF0")
			return
		}
		missAddr := r.mmioR(p, mgmt+MgmtMissAddr)
		missSize := r.mmioR(p, mgmt+MgmtMissSize)
		isWrite := r.mmioR(p, mgmt+MgmtMissIsWrite)
		if isWrite != 1 {
			t.Errorf("MissIsWrite = %d", isWrite)
		}
		runs := append(tr.Runs(), extent.Run{Logical: missAddr, Physical: 600 + missAddr, Count: missSize})
		if err := tr.Rebuild(runs); err != nil {
			t.Error(err)
			return
		}
		r.mmioW(p, mgmt+MgmtTreeRoot, uint64(tr.Root()))
		r.mmioW(p, mgmt+MgmtRewalk, RewalkRetry)
	}
	buf := r.mem.MustAlloc(1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 8)
		d := r.openFunction(p, 1)
		if err := r.mem.Write(buf, bytes.Repeat([]byte{0x77}, 1024)); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpWrite, 5, 1, buf); st != StatusOK {
			t.Errorf("miss write status %d", st)
		}
		// The hypervisor mapped vLBA 5 -> pLBA 605.
		sl, _ := r.ctl.Medium.Store().Slice(605, 1)
		if sl[0] != 0x77 {
			t.Error("allocated write did not land at the hypervisor-assigned pLBA")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
	if r.missMSIs == 0 || r.ctl.Misses == 0 {
		t.Fatalf("no miss interrupt observed (MSIs=%d, misses=%d)", r.missMSIs, r.ctl.Misses)
	}
}

func TestWriteMissDeniedReportsNoSpace(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree(nil)
	mgmt := r.bar + r.ctl.MgmtPageOffset()
	r.missHandler = func(p *sim.Proc) {
		r.mmioW(p, mgmt+MgmtRewalk, RewalkFail) // quota exhausted
	}
	buf := r.mem.MustAlloc(1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 8)
		d := r.openFunction(p, 1)
		if st := d.io(p, OpWrite, 0, 1, buf); st != StatusNoSpace {
			t.Errorf("denied write status %d, want %d", st, StatusNoSpace)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestPrunedSubtreeTriggersRegeneration(t *testing.T) {
	r := newRig(t, smallParams())
	var runs []extent.Run
	for i := 0; i < 64; i++ {
		runs = append(runs, extent.Run{Logical: uint64(i * 2), Physical: uint64(1000 + i*2), Count: 1})
	}
	tr := r.buildTree(runs)
	if _, err := tr.Prune(1000); err != nil {
		t.Fatal(err)
	}
	mgmt := r.bar + r.ctl.MgmtPageOffset()
	regenerated := false
	r.missHandler = func(p *sim.Proc) {
		regenerated = true
		if err := tr.Rebuild(runs); err != nil {
			t.Error(err)
			return
		}
		r.mmioW(p, mgmt+MgmtTreeRoot, uint64(tr.Root()))
		r.mmioW(p, mgmt+MgmtRewalk, RewalkRetry)
	}
	buf := r.mem.MustAlloc(1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 128)
		d := r.openFunction(p, 1)
		if err := r.ctl.Medium.Store().WriteBlocks(1000, bytes.Repeat([]byte{0xCC}, 1024)); err != nil {
			t.Fatal(err)
		}
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusOK {
			t.Errorf("read status %d", st)
		}
		got := make([]byte, 1024)
		if err := r.mem.Read(buf, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != 0xCC {
			t.Error("read after regeneration returned wrong data")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
	if !regenerated {
		t.Fatal("pruned read did not interrupt the host")
	}
}

func TestDisabledVFRejectsIO(t *testing.T) {
	r := newRig(t, smallParams())
	buf := r.mem.MustAlloc(1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		d := r.openFunction(p, 1) // never enabled by the hypervisor
		if st := d.io(p, OpRead, 0, 1, buf); st != StatusDisabled {
			t.Errorf("status %d, want %d", st, StatusDisabled)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestGuestCannotProgramManagementViaVFPage(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 4}})
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 4)
		vfPage := r.bar + r.ctl.FunctionPageOffset(1)
		// A malicious guest writes management offsets through its own page.
		r.mmioW(p, vfPage+MgmtTreeRoot, 0xDEAD) // aliases RegRingBase: affects only its own ring
		r.mmioW(p, vfPage+0x800, 1)             // PF-only BTLB flush offset: ignored
		r.mmioW(p, vfPage+MgmtDeviceSize, 1<<40)
		vf := r.ctl.VF(0)
		if vf.TreeRoot() != tr.Root() {
			t.Error("guest overwrote its extent tree root")
		}
		if vf.SizeBlocks() != 4 {
			t.Errorf("guest changed its device size to %d", vf.SizeBlocks())
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestBTLBHitRateAndFlush(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 100, Count: 256}})
	buf := r.mem.MustAlloc(4096, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 256)
		d := r.openFunction(p, 1)
		for i := 0; i < 16; i++ {
			if st := d.io(p, OpRead, uint64(i*4), 4, buf); st != StatusOK {
				t.Errorf("read status %d", st)
			}
		}
		// One extent: only the first chunk(s) in flight miss — at most one
		// per overlapped walker.
		maxMisses := int64(r.ctl.P.Walkers)
		if m := r.ctl.BTLBStats.Misses; m < 1 || m > maxMisses {
			t.Errorf("BTLB misses = %d, want 1..%d", m, maxMisses)
		}
		if r.ctl.BTLBStats.Rate() < 0.9 {
			t.Errorf("hit rate = %.2f", r.ctl.BTLBStats.Rate())
		}
		walks := r.ctl.WalkNodeReads
		missesBefore := r.ctl.BTLBStats.Misses
		// Flush and repeat: fresh misses appear.
		r.mmioW(p, r.bar+PFRegBTLBFlush, 1)
		if st := d.io(p, OpRead, 0, 4, buf); st != StatusOK {
			t.Errorf("read status %d", st)
		}
		extra := r.ctl.BTLBStats.Misses - missesBefore
		if extra < 1 || extra > maxMisses {
			t.Errorf("misses after flush grew by %d, want 1..%d", extra, maxMisses)
		}
		if r.ctl.WalkNodeReads <= walks {
			t.Error("flush did not force a new tree walk")
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

func TestOOBChannelBypassesStalledTranslation(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree(nil) // everything is a hole: any VF write stalls
	// No miss handler: the VF's walk parks forever.
	buf := r.mem.MustAlloc(1024, 64)
	pfDone := false
	r.eng.Go("host", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 8)
		vf := r.openFunction(p, 1)
		pf := r.openFunction(p, 0)
		// Saturate both walkers with stalling writes, submitted and
		// abandoned (no completion wait: submit via raw ring).
		var desc [DescBytes]byte
		for i := 0; i < 2; i++ {
			EncodeDescriptor(desc[:], OpWrite, uint32(100+i), uint64(i), 1, buf)
			slot := int64(vf.prod % testRing)
			if err := r.mem.Write(vf.ringBase+slot*DescBytes, desc[:]); err != nil {
				t.Fatal(err)
			}
			vf.prod++
		}
		r.mmioW(p, vf.pageOff+RegDoorbell, uint64(vf.prod))
		p.Sleep(50 * sim.Microsecond) // let the walkers stall
		// The PF must still complete I/O through the OOB channel.
		if st := pf.io(p, OpWrite, 0, 1, buf); st != StatusOK {
			t.Errorf("PF write while VF stalled: status %d", st)
		}
		pfDone = true
	})
	r.run()
	if !pfDone {
		t.Fatal("PF I/O blocked behind a stalled VF translation")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	r := newRig(t, smallParams())
	tr1 := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 512}})
	tr2 := r.buildTree([]extent.Run{{Logical: 0, Physical: 1024, Count: 512}})
	var end1, end2 sim.Time
	buf := r.mem.MustAlloc(16*1024, 64)
	const reqs = 32
	r.eng.Go("vm1", func(p *sim.Proc) {
		r.setVF(p, 0, tr1.Root(), 512)
		d := r.openFunction(p, 1)
		for i := 0; i < reqs; i++ {
			d.io(p, OpWrite, uint64(i*4), 4, buf)
		}
		end1 = p.Now()
	})
	r.eng.Go("vm2", func(p *sim.Proc) {
		r.setVF(p, 1, tr2.Root(), 512)
		d := r.openFunction(p, 2)
		for i := 0; i < reqs; i++ {
			d.io(p, OpWrite, uint64(i*4), 4, buf)
		}
		end2 = p.Now()
	})
	r.run()
	if end1 == 0 || end2 == 0 {
		t.Fatal("a VM did not finish")
	}
	ratio := float64(end1) / float64(end2)
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("unfair service: vm1=%v vm2=%v (ratio %.2f)", end1, end2, ratio)
	}
}

func TestCompletionRingWraparound(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree([]extent.Run{{Logical: 0, Physical: 0, Count: 256}})
	buf := r.mem.MustAlloc(1024, 64)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 256)
		d := r.openFunction(p, 1)
		for i := 0; i < int(testRing)*3; i++ {
			if st := d.io(p, OpWrite, uint64(i%256), 1, buf); st != StatusOK {
				t.Fatalf("request %d status %d", i, st)
			}
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock before ring wrapped")
	}
}

func TestZeroCountRequestCompletes(t *testing.T) {
	r := newRig(t, smallParams())
	tr := r.buildTree(nil)
	done := false
	r.eng.Go("guest", func(p *sim.Proc) {
		r.setVF(p, 0, tr.Root(), 8)
		d := r.openFunction(p, 1)
		if st := d.io(p, OpRead, 0, 0, 0); st != StatusOK {
			t.Errorf("zero-count status %d", st)
		}
		done = true
	})
	r.run()
	if !done {
		t.Fatal("deadlock")
	}
}

// Property: random scattered mappings and random I/O patterns through two
// VFs always produce data identical to a shadow model, and never touch
// physical blocks outside each VF's mapping.
func TestRandomIOModelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		r := newRig(t, smallParams())
		store := r.ctl.Medium.Store()
		// Two disjoint random mappings of 64 blocks each.
		perm := rng.Perm(2048)
		mkRuns := func(base int) []extent.Run {
			var runs []extent.Run
			for i := 0; i < 64; i++ {
				runs = append(runs, extent.Run{Logical: uint64(i), Physical: uint64(1000 + perm[base+i]), Count: 1})
			}
			return runs
		}
		runs1, runs2 := mkRuns(0), mkRuns(64)
		tr1, tr2 := r.buildTree(runs1), r.buildTree(runs2)
		shadow1 := make([]byte, 64*1024)
		shadow2 := make([]byte, 64*1024)
		buf := r.mem.MustAlloc(8*1024, 64)
		ok := false
		r.eng.Go("guest", func(p *sim.Proc) {
			r.setVF(p, 0, tr1.Root(), 64)
			r.setVF(p, 1, tr2.Root(), 64)
			d1 := r.openFunction(p, 1)
			d2 := r.openFunction(p, 2)
			for op := 0; op < 60; op++ {
				d, shadow := d1, shadow1
				if rng.Intn(2) == 1 {
					d, shadow = d2, shadow2
				}
				lba := uint64(rng.Intn(60))
				count := uint32(1 + rng.Intn(4))
				n := int(count) * 1024
				if rng.Intn(2) == 0 {
					chunkData := make([]byte, n)
					rng.Read(chunkData)
					if err := r.mem.Write(buf, chunkData); err != nil {
						t.Fatal(err)
					}
					if st := d.io(p, OpWrite, lba, count, buf); st != StatusOK {
						t.Fatalf("write status %d", st)
					}
					copy(shadow[lba*1024:], chunkData)
				} else {
					if st := d.io(p, OpRead, lba, count, buf); st != StatusOK {
						t.Fatalf("read status %d", st)
					}
					got := make([]byte, n)
					if err := r.mem.Read(buf, got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, shadow[lba*1024:lba*1024+uint64(n)]) {
						t.Fatalf("trial %d op %d: read mismatch", trial, op)
					}
				}
			}
			ok = true
		})
		r.run()
		if !ok {
			t.Fatal("deadlock")
		}
		// Cross-check physical placement for both VFs.
		verify := func(runs []extent.Run, shadow []byte) {
			for _, rn := range runs {
				sl, err := store.Slice(int64(rn.Physical), int64(rn.Count))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(sl, shadow[rn.Logical*1024:(rn.Logical+rn.Count)*1024]) {
					t.Fatalf("physical block %d does not match shadow", rn.Physical)
				}
			}
		}
		verify(runs1, shadow1)
		verify(runs2, shadow2)
	}
}

func TestBTLBUnit(t *testing.T) {
	b := newBTLB(2)
	b.insert(1, extent.Run{Logical: 0, Physical: 100, Count: 10})
	if p, _, ok := b.lookup(1, 5); !ok || p != 105 {
		t.Fatalf("lookup = %d, %v", p, ok)
	}
	if _, _, ok := b.lookup(2, 5); ok {
		t.Fatal("cross-function BTLB hit")
	}
	if _, _, ok := b.lookup(1, 10); ok {
		t.Fatal("hit past extent end")
	}
	// FIFO eviction.
	b.insert(1, extent.Run{Logical: 100, Physical: 500, Count: 1})
	b.insert(1, extent.Run{Logical: 200, Physical: 600, Count: 1})
	if _, _, ok := b.lookup(1, 5); ok {
		t.Fatal("oldest entry not evicted")
	}
	// Duplicate insert does not evict.
	b2 := newBTLB(2)
	run := extent.Run{Logical: 0, Physical: 1, Count: 1}
	b2.insert(3, run)
	b2.insert(3, extent.Run{Logical: 5, Physical: 9, Count: 1})
	b2.insert(3, run) // duplicate
	if _, _, ok := b2.lookup(3, 5); !ok {
		t.Fatal("duplicate insert evicted a live entry")
	}
	// flushFn only clears one function.
	b2.insert(4, extent.Run{Logical: 0, Physical: 7, Count: 1})
	b2.flushFn(3)
	if _, _, ok := b2.lookup(3, 0); ok {
		t.Fatal("flushFn left entries")
	}
	// Zero-entry BTLB never hits and never crashes.
	b0 := newBTLB(0)
	b0.insert(1, run)
	if _, _, ok := b0.lookup(1, 0); ok {
		t.Fatal("zero-entry BTLB hit")
	}
}
