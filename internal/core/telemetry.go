package core

import (
	"nesc/internal/metrics"
	"nesc/internal/sim"
	"nesc/internal/slo"
	"nesc/internal/trace"
)

// Telemetry glue: the controller publishes its counters into a
// metrics.Registry and threads request-scoped spans through the pipeline.
// Everything here only READS the simulated clock — no instrumented path ever
// sleeps or schedules — so enabling telemetry cannot perturb virtual time,
// and every experiment output stays byte-identical with it on or off.
//
// Two mechanisms with different hot-path costs:
//
//   - The scattered int64 Stats fields (also served by the MMIO error
//     registers) stay the single source of truth; the registry absorbs them
//     as GaugeFunc closures sampled at export time. Zero hot-path change.
//   - Per-stage latency histograms and per-request counters are fed from the
//     pipeline as requests flow, keyed {vf, q, op}. Each observation is one
//     mutex-guarded map lookup with a comparable struct key — no allocation.

// Histogram/counter family names. The naming scheme is
// nesc_<subsystem>_<name> with unit suffixes (_ns, _total); DESIGN.md §10
// documents the full catalogue.
const (
	mFetchNs        = "nesc_pipeline_fetch_ns"
	mQueueWaitNs    = "nesc_pipeline_queue_wait_ns"
	mTransHitNs     = "nesc_pipeline_translate_hit_ns"
	mTransWalkNs    = "nesc_pipeline_translate_walk_ns"
	mTransMissNs    = "nesc_pipeline_translate_miss_ns"
	mTransCowNs     = "nesc_pipeline_translate_cow_ns"
	mDTUWaitNs      = "nesc_pipeline_dtu_wait_ns"
	mTransferNs     = "nesc_pipeline_transfer_ns"
	mVerifyNs       = "nesc_pipeline_verify_ns"
	mRequestNs      = "nesc_request_ns"
	mRequestsTotal  = "nesc_requests_total"
	mRequestErrors  = "nesc_request_errors_total"
	mMediumRetryTot = "nesc_medium_retries_total"
)

var familyHelp = map[string]string{
	mFetchNs:        "descriptor fetch + decode latency",
	mQueueWaitNs:    "vLBA queue residence per chunk",
	mTransHitNs:     "translation latency, BTLB hit",
	mTransWalkNs:    "translation latency, extent-tree walk",
	mTransMissNs:    "translation latency, hypervisor-serviced miss",
	mTransCowNs:     "translation latency, hypervisor-serviced CoW break",
	mDTUWaitNs:      "pLBA queue residence per chunk",
	mTransferNs:     "DMA channel service per chunk (medium + PCIe)",
	mVerifyNs:       "scrub verify service per chunk",
	mRequestNs:      "end-to-end request latency (fetch to completion)",
	mRequestsTotal:  "requests completed (any status)",
	mRequestErrors:  "requests completed with a non-OK status",
	mMediumRetryTot: "medium/integrity retry rounds",
}

// opName renders an opcode as a metric label value.
func opName(op uint32) string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpVerify:
		return "verify"
	}
	return "other"
}

// translateFamily maps a translation outcome tag to its histogram family.
func translateFamily(tag string) string {
	switch tag {
	case trace.TagWalk:
		return mTransWalkNs
	case trace.TagMiss:
		return mTransMissNs
	case trace.TagCow:
		return mTransCowNs
	}
	return mTransHitNs
}

// instrumented reports whether any per-request telemetry sink is attached —
// the gate for chunk stage-timestamping. The attributor counts: it consumes
// the same stage timestamps the metrics histograms do.
func (c *Controller) instrumented() bool {
	return c.Metrics != nil || c.Spans != nil || c.Attrib != nil
}

// reqLabels builds the {vf, q, op} label set for a request.
func reqLabels(r *Request) metrics.Labels {
	q := 0
	if r.q != nil {
		q = r.q.idx
	}
	return metrics.VFQOp(r.fn.idx, q, opName(r.Op))
}

// observe feeds one stage duration into the named histogram family.
func (c *Controller) observe(name string, r *Request, d sim.Time) {
	if c.Metrics == nil {
		return
	}
	c.Metrics.Histogram(name, familyHelp[name], reqLabels(r)).Observe(int64(d))
}

// seg accumulates one stage duration into a request's attribution vector.
// Free (one branch) when no attributor is attached.
func (c *Controller) seg(r *Request, i int, d sim.Time) {
	if c.Attrib != nil && d > 0 {
		r.segs[i] += d
	}
}

// noteDeadline posts a deadline-expiration event naming the pipeline stage
// that caught it.
func (c *Controller) noteDeadline(at sim.Time, r *Request, stage string) {
	if c.Board != nil {
		c.Board.Emit(slo.Event{At: at, Kind: slo.EventDeadline, Dev: c.P.DeviceID,
			VF: r.fn.idx, ReqID: r.ReqID, Note: stage})
	}
}

// finishAttribution finalizes a completed request's segment vector — retry
// share carved out of the medium share, admission-gate rejects charged
// entirely to admission, residual wall time to "other" — and folds it into
// the budget table. Called only with an attributor attached.
func (c *Controller) finishAttribution(r *Request, now sim.Time) {
	total := now - r.t0
	if r.retries > 0 {
		rd := sim.Time(r.retries) * c.P.MediumRetryDelay
		if rd > r.segs[slo.SegMedium] {
			rd = r.segs[slo.SegMedium]
		}
		r.segs[slo.SegRetry] = rd
		r.segs[slo.SegMedium] -= rd
	}
	if !r.admitted && r.status == StatusBusy {
		// Fast-failed at the admission gate: nothing executed, its whole
		// (short) life was admission control.
		r.segs[slo.SegAdmission] = total
	}
	var sum sim.Time
	for i := 0; i < slo.NumSegments; i++ {
		sum += r.segs[i]
	}
	if total > sum {
		r.segs[slo.SegOther] = total - sum
	}
	c.Attrib.Record(r.fn.idx, opName(r.Op), r.ReqID, total, r.status == StatusOK, r.segs)
}

// AttachSLO hands the controller the observability layer's sinks: the
// anomaly scoreboard, the per-tenant SLO engine, and the attribution sink.
// Any may be nil; with all nil the controller behaves exactly as before.
// Like AttachTelemetry, everything here only reads the virtual clock.
func (c *Controller) AttachSLO(board *slo.Scoreboard, eng *slo.Engine, attrib *slo.Attributor) {
	c.Board = board
	c.SLO = eng
	c.Attrib = attrib
}

// AttachTelemetry hands the controller its telemetry sinks. Either may be
// nil; with both nil the controller behaves exactly as before. Must be
// called before traffic flows (registration takes the registry lock). The
// device's counter fields are registered as export-time gauge closures;
// re-attaching a controller to the same registry replaces them (last
// controller wins), which is what a multi-platform benchmark run wants.
func (c *Controller) AttachTelemetry(reg *metrics.Registry, spans *trace.SpanRecorder) {
	c.Metrics = reg
	c.Spans = spans
	if reg == nil {
		return
	}
	no := metrics.NoLabels
	counters := []struct {
		name, help string
		v          *int64
	}{
		{"nesc_device_btlb_hits_total", "BTLB lookup hits", &c.BTLBStats.Hits},
		{"nesc_device_btlb_misses_total", "BTLB lookup misses", &c.BTLBStats.Misses},
		{"nesc_device_walk_node_reads_total", "extent-tree node DMA reads", &c.WalkNodeReads},
		{"nesc_device_misses_total", "translation misses latched", &c.Misses},
		{"nesc_device_cow_faults_total", "writes trapped on write-protected (CoW shared) extents", &c.CowFaults},
		{"nesc_device_btlb_invalidations_total", "BTLB entries dropped by targeted invalidation", &c.BTLBInvalidations},
		{"nesc_device_reqs_done_total", "requests retired", &c.ReqsDone},
		{"nesc_device_chunks_done_total", "chunks retired", &c.ChunksDone},
		{"nesc_device_fetch_drops_total", "doorbells lost to descriptor-fetch DMA errors", &c.FetchDrops},
		{"nesc_device_cpl_drops_total", "completions lost to completion-ring DMA errors", &c.CplDrops},
		{"nesc_device_medium_errors_total", "chunks that exhausted medium retries", &c.MediumErrors},
		{"nesc_device_medium_retries_total", "medium retry attempts", &c.MediumRetries},
		{"nesc_device_dma_faults_total", "chunks failed by data-buffer DMA faults", &c.DMAFaults},
		{"nesc_device_flrs_total", "function-level resets performed", &c.FLRs},
		{"nesc_device_aborted_chunks_total", "chunks killed by a reset", &c.AbortedChunks},
		{"nesc_device_miss_resends_total", "miss MSIs re-raised by the resend timer", &c.MissResends},
		{"nesc_device_bad_ring_writes_total", "rejected ring-size register writes", &c.BadRingSizes},
		{"nesc_device_bad_doorbells_total", "ignored incoherent doorbell writes", &c.BadDoorbells},
		{"nesc_device_integrity_errors_total", "requests latched StatusIntegrityError", &c.IntegrityErrors},
		{"nesc_device_integrity_repairs_total", "integrity failures healed by retry or scrub", &c.IntegrityRepairs},
		{"nesc_device_scrub_chunks_total", "verify chunks processed", &c.ScrubChunks},
		{"nesc_device_queue_leases_total", "queue pairs leased from the device pool", &c.QueueLeases},
		{"nesc_device_queue_returns_total", "queue pairs returned to the device pool", &c.QueueReturns},
		{"nesc_device_queue_lease_fails_total", "ring programmings rejected by an exhausted pool", &c.QueueLeaseFails},
		{"nesc_device_shadow_batches_total", "fetch batches initiated via shadow doorbells", &c.ShadowBatches},
		{"nesc_device_admit_rejects_total", "requests fast-failed StatusBusy by per-VF admission control", &c.AdmitRejects},
		{"nesc_device_deadline_expirations_total", "requests or chunks completed StatusBusy past their deadline", &c.DeadlineExpirations},
	}
	for _, ct := range counters {
		v := ct.v
		reg.GaugeFunc(ct.name, ct.help, no, func() float64 { return float64(*v) })
	}
	reg.GaugeFunc("nesc_device_btlb_hit_rate", "BTLB hits / lookups", no, c.BTLBStats.Rate)
	reg.GaugeFunc("nesc_device_flight_records_total", "flight-recorder captures", no,
		func() float64 {
			if c.Flight == nil {
				return 0
			}
			return float64(c.Flight.Total)
		})
	reg.GaugeFunc("nesc_device_materialized_vfs", "VFs with device state built", no,
		func() float64 { return float64(c.nMat) })
	reg.GaugeFunc("nesc_device_leased_queues", "queue pairs currently leased out", no,
		func() float64 { return float64(c.LeasedQueues()) })
	// DRR fairness: Jain's index over per-VF block counts, restricted to VFs
	// that moved traffic (1 = perfectly fair, 1/n = maximally skewed). Only
	// materialized VFs can have moved traffic, so the lazy table loses
	// nothing.
	reg.GaugeFunc("nesc_device_drr_fairness", "Jain fairness index over per-VF blocks served", no,
		func() float64 { return c.JainFairness() })
	// Per-function series: the PF and every already-materialized VF now;
	// VFs materialized later register their gauges at materialization, so
	// configured-but-idle VFs never occupy series.
	c.fnGaugeReg = reg
	c.registerFnGauges(reg, c.pf)
	c.forEachVF(func(f *Function) { c.registerFnGauges(reg, f) })
}

// registerFnGauges publishes one function's per-VF gauge series; called for
// live functions at attach time and for each VF materialized afterwards.
func (c *Controller) registerFnGauges(reg *metrics.Registry, f *Function) {
	l := metrics.VFLabel(f.idx)
	reg.GaugeFunc("nesc_fn_inflight", "fetched-but-uncompleted requests", l,
		func() float64 { return float64(f.inflight) })
	reg.GaugeFunc("nesc_fn_reqs_total", "requests fetched", l,
		func() float64 { return float64(f.Reqs) })
	reg.GaugeFunc("nesc_fn_blocks_total", "blocks requested", l,
		func() float64 { return float64(f.Blocks) })
	reg.GaugeFunc("nesc_fn_resets_total", "function-level resets", l,
		func() float64 { return float64(f.Resets) })
}

// JainFairness computes Jain's fairness index (Σx)²/(n·Σx²) over the block
// counts of materialized VFs that served any traffic; 1 when idle.
func (c *Controller) JainFairness() float64 {
	var sum, sumSq float64
	n := 0
	c.forEachVF(func(f *Function) {
		if f.Blocks == 0 {
			return
		}
		x := float64(f.Blocks)
		sum += x
		sumSq += x * x
		n++
	})
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}
