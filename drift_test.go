package nesc

// Drift lint between the two telemetry surfaces: every counter/gauge field
// in the public Stats snapshot must have a corresponding family in the
// metrics registry export, so a dashboard built on either surface sees the
// same signals. The mapping below is the contract — adding a Stats field
// without registering a metric family (or vice versa: mapping a family that
// never registers) fails this test, which is exactly the drift it exists to
// catch. Fields with a documented reason to stay snapshot-only go in
// statsFieldExempt instead, never silently.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// statsMetricFamily maps each Stats field to the registry family exporting
// the same signal.
var statsMetricFamily = map[string]string{
	"BTLBHitRate":         "nesc_device_btlb_hit_rate",
	"BTLBHits":            "nesc_device_btlb_hits_total",
	"BTLBMisses":          "nesc_device_btlb_misses_total",
	"WalkNodeReads":       "nesc_device_walk_node_reads_total",
	"MissInterrupts":      "nesc_hyp_miss_interrupts_total",
	"MediumReadBytes":     "nesc_medium_read_bytes_total",
	"MediumWriteBytes":    "nesc_medium_write_bytes_total",
	"DMAReadBytes":        "nesc_fabric_dma_read_bytes_total",
	"DMAWriteBytes":       "nesc_fabric_dma_write_bytes_total",
	"InjectedFaults":      "nesc_fault_injected_total",
	"MediumErrors":        "nesc_device_medium_errors_total",
	"MediumRetries":       "nesc_device_medium_retries_total",
	"DMAFaultsInjected":   "nesc_device_dma_faults_total",
	"DroppedMSIs":         "nesc_fabric_msis_dropped_total",
	"FetchDrops":          "nesc_device_fetch_drops_total",
	"CplDrops":            "nesc_device_cpl_drops_total",
	"DriverTimeouts":      "nesc_driver_timeouts_total",
	"DriverResubmits":     "nesc_driver_resubmits_total",
	"PolledCompletions":   "nesc_driver_polled_cpls_total",
	"StaleCompletions":    "nesc_driver_stale_cpls_total",
	"SeqGaps":             "nesc_driver_seq_gaps_total",
	"VFResets":            "nesc_hyp_vf_resets_total",
	"MissFaults":          "nesc_hyp_miss_faults_total",
	"BadRingWrites":       "nesc_device_bad_ring_writes_total",
	"BadDoorbells":        "nesc_device_bad_doorbells_total",
	"LatentHits":          "nesc_fault_latent_hits_total",
	"LatentRepaired":      "nesc_fault_latent_repaired_total",
	"IntegrityErrors":     "nesc_device_integrity_errors_total",
	"IntegrityRepairs":    "nesc_device_integrity_repairs_total",
	"CorruptionsInjected": "nesc_fault_corruptions_total",
	"LatentOutstanding":   "nesc_fault_latent_outstanding",
	"CorruptOutstanding":  "nesc_fault_corrupt_outstanding",
	"PIMismatches":        "nesc_driver_pi_mismatches_total",
	"PIWriteErrors":       "nesc_driver_pi_write_errors_total",
	"RootCauseOverrides":  "nesc_driver_root_cause_overrides_total",
	"MediumGuardErrors":   "nesc_medium_guard_errors_total",
	"RecoveryReads":       "nesc_medium_recovery_reads_total",
	"ScrubPasses":         "nesc_scrub_passes_total",
	"ScrubBlocks":         "nesc_scrub_blocks_total",
	"ScrubRepairs":        "nesc_scrub_repairs_total",
	"ScrubChunks":         "nesc_device_scrub_chunks_total",
	"DegradedOps":         "nesc_fault_degraded_ops_total",
	"DegradedTime":        "nesc_fault_degraded_ns_total",
	"AdmitRejects":        "nesc_device_admit_rejects_total",
	"DeadlineExpirations": "nesc_device_deadline_expirations_total",
	"BusyRejects":         "nesc_driver_busy_rejects_total",
	"HedgedReads":         "nesc_fabric_hedged_reads_total",
	"HedgeWins":           "nesc_fabric_hedge_wins_total",
	"Quarantines":         "nesc_fabric_quarantines_total",
	"Rejoins":             "nesc_fabric_rejoins_total",
	"ProbeReads":          "nesc_fabric_probe_reads_total",
	"SLOAlerts":           "nesc_slo_alerts_total",
	"AnomalyEvents":       "nesc_scoreboard_events_total",
	"Snapshots":           "nesc_hyp_snapshots_total",
	"Clones":              "nesc_hyp_clones_total",
	"CowFaults":           "nesc_device_cow_faults_total",
	"CowBreaks":           "nesc_hyp_cow_breaks_total",
	"BTLBInvalidations":   "nesc_device_btlb_invalidations_total",
	"SharedBlocks":        "nesc_fs_shared_blocks",
	"CASSeals":            "nesc_cas_seals_total",
	"CASForks":            "nesc_cas_forks_total",
	"CASReleases":         "nesc_cas_releases_total",
	"CASDedupHits":        "nesc_cas_dedup_hits_total",
	"CASChunksLive":       "nesc_cas_chunks_live",
	"CASBlocksLogical":    "nesc_cas_blocks_logical",
	"CASFetchMisses":      "nesc_cas_fetch_misses_total",
	"CASMaterializations": "nesc_cas_materializations_total",
	"CASRemoteFetches":    "nesc_cas_remote_fetches_total",
	"CASRemotePuts":       "nesc_cas_remote_puts_total",
	"CASRemoteRetries":    "nesc_cas_remote_retries_total",
	"CASRemoteFetchTime":  "nesc_cas_remote_fetch_ns",
	"CASFetchFails":       "nesc_cas_fetch_fails_total",
	"CASHashMismatches":   "nesc_cas_hash_mismatches_total",
	"CASCacheHits":        "nesc_cas_cache_hits_total",
	"CASCacheMisses":      "nesc_cas_cache_misses_total",
	"CASCacheEvictions":   "nesc_cas_cache_evictions_total",
	"CASCacheResident":    "nesc_cas_cache_resident",
}

// statsFieldExempt lists Stats fields that deliberately have no registry
// family, each with the reason on record.
var statsFieldExempt = map[string]string{
	"VirtualTime": "the simulation clock is the export's time base, not a signal of its own",
	"CorruptionsDetected": "composite of nesc_medium_guard_errors_total + " +
		"nesc_driver_pi_mismatches_total + nesc_driver_pi_write_errors_total, each exported individually",
}

func TestStatsFieldsMapToMetricFamilies(t *testing.T) {
	st := reflect.TypeOf(Stats{})
	fields := make(map[string]bool, st.NumField())
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		fields[name] = true
		_, mapped := statsMetricFamily[name]
		_, exempt := statsFieldExempt[name]
		switch {
		case mapped && exempt:
			t.Errorf("Stats.%s is both mapped and exempt — pick one", name)
		case !mapped && !exempt:
			t.Errorf("Stats.%s has no metric family: register one, map it in statsMetricFamily, or document an exemption", name)
		}
	}
	for name := range statsMetricFamily {
		if !fields[name] {
			t.Errorf("statsMetricFamily maps %q, which is not a Stats field (stale entry?)", name)
		}
	}
	for name := range statsFieldExempt {
		if !fields[name] {
			t.Errorf("statsFieldExempt lists %q, which is not a Stats field (stale entry?)", name)
		}
	}
	if t.Failed() {
		return
	}

	// Arm every telemetry source (metrics, fault plan, observability layer)
	// and run a small workload so even lazily attached gauges register, then
	// assert each mapped family actually appears in the JSON export.
	sim := New(Config{
		Metrics:          true,
		Attribution:      true,
		ScoreboardEvents: 32,
		SLO:              &SLOObjective{},
		CAS:              true,
		Fault:            &FaultPlan{Seed: 1},
	})
	err := sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/drift.img", 11, 1<<20, false); err != nil {
			return err
		}
		vm, err := ctx.StartVM("drift", BackendNeSC, "/drift.img", 11)
		if err != nil {
			return err
		}
		buf := bytes.Repeat([]byte{0xD7}, 8192)
		if err := vm.WriteAt(ctx, buf, 0); err != nil {
			return err
		}
		if err := vm.ReadAt(ctx, buf, 0); err != nil {
			return err
		}
		// Content-addressed tier: seal, fork, and touch the fork so the cas
		// store, cache, and materialization counters all move.
		if _, err := ctx.SealImage("/drift.img", "drift-golden", 11); err != nil {
			return err
		}
		if err := ctx.ForkImage("drift-golden", "/drift-fork.img", 11); err != nil {
			return err
		}
		fvm, err := ctx.StartVM("drift-fork", BackendNeSC, "/drift-fork.img", 11)
		if err != nil {
			return err
		}
		if err := fvm.ReadAt(ctx, buf, 0); err != nil {
			return err
		}
		ctx.Sleep(100 * time.Microsecond)
		fvm.Stop(ctx)
		vm.Stop(ctx)
		return nil
	})
	if err != nil {
		t.Fatalf("workload failed: %v", err)
	}

	var out bytes.Buffer
	if err := sim.WriteMetricsJSON(&out); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	var doc []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("metrics export is not valid JSON: %v", err)
	}
	exported := make(map[string]bool, len(doc))
	for _, fam := range doc {
		exported[fam.Name] = true
	}
	for field, family := range statsMetricFamily {
		if !exported[family] {
			t.Errorf("Stats.%s maps to family %q, which the armed registry never exported", field, family)
		}
	}
}
