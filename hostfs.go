package nesc

import (
	"errors"
	"io"

	"nesc/internal/extfs"
)

// Host filesystem operations: what a cloud operator does on the
// hypervisor's own filesystem before exporting files to tenants.

// CreateImage creates a disk-image file owned by uid. When sparse is false
// the image is fully preallocated; a sparse image allocates on first write
// through NeSC's lazy-allocation miss path.
func (c *Ctx) CreateImage(path string, uid uint32, sizeBytes int64, sparse bool) error {
	fs := c.s.pl.Hyp.HostFS
	f, err := fs.Create(c.proc, path, uid, 0o600)
	if err != nil {
		return err
	}
	if err := f.Truncate(c.proc, uint64(sizeBytes)); err != nil {
		return err
	}
	if sparse {
		return nil
	}
	bs := uint64(c.s.pl.Cfg.Core.BlockSize)
	return fs.AllocateRange(c.proc, path, 0, (uint64(sizeBytes)+bs-1)/bs)
}

// WriteHostFile writes data at off into an existing host file (as root),
// creating it if absent.
func (c *Ctx) WriteHostFile(path string, data []byte, off int64) error {
	fs := c.s.pl.Hyp.HostFS
	f, err := fs.Open(c.proc, path, 0, extfs.PermRead|extfs.PermWrite)
	if errors.Is(err, extfs.ErrNotExist) {
		f, err = fs.Create(c.proc, path, 0, 0o644)
	}
	if err != nil {
		return err
	}
	_, err = f.WriteAt(c.proc, data, off)
	return err
}

// ReadHostFile reads len(p) bytes at off from a host file (as root),
// returning the bytes read.
func (c *Ctx) ReadHostFile(path string, p []byte, off int64) (int, error) {
	f, err := c.s.pl.Hyp.HostFS.Open(c.proc, path, 0, extfs.PermRead)
	if err != nil {
		return 0, err
	}
	n, err := f.ReadAt(c.proc, p, off)
	if err == io.EOF {
		err = nil
	}
	return n, err
}

// HostMkdir creates a world-writable directory on the host filesystem (a
// shared image spool; per-tenant isolation comes from the image files' own
// 0600 modes).
func (c *Ctx) HostMkdir(path string, uid uint32) error {
	return c.s.pl.Hyp.HostFS.Mkdir(c.proc, path, uid, 0o777)
}

// HostRemove unlinks a host file (as root).
func (c *Ctx) HostRemove(path string) error {
	return c.s.pl.Hyp.HostFS.Remove(c.proc, path, 0)
}

// HostList lists a host directory.
func (c *Ctx) HostList(dir string) ([]string, error) {
	ents, err := c.s.pl.Hyp.HostFS.ReadDir(c.proc, dir, 0)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name
	}
	return names, nil
}

// HostStat describes a host file.
type HostStat struct {
	Size    int64
	UID     uint32
	Mode    uint16
	IsDir   bool
	Extents int
}

// StatHost stats a host path.
func (c *Ctx) StatHost(path string) (HostStat, error) {
	info, err := c.s.pl.Hyp.HostFS.Stat(c.proc, path, 0)
	if err != nil {
		return HostStat{}, err
	}
	return HostStat{
		Size:    int64(info.Size),
		UID:     info.UID,
		Mode:    info.Mode & 0o777,
		IsDir:   info.IsDir(),
		Extents: info.Extents,
	}, nil
}

// CheckHostFS runs the host filesystem's consistency check (fsck).
func (c *Ctx) CheckHostFS() error { return c.s.pl.Hyp.HostFS.Check(c.proc) }

// PruneExtentTrees reclaims host memory by pruning up to maxNodes nodes per
// VF extent tree; the device regenerates pruned mappings on demand through
// miss interrupts.
func (c *Ctx) PruneExtentTrees(maxNodes int) int {
	return c.s.pl.Hyp.PruneVFTrees(maxNodes)
}

// FlushBTLB invalidates the device's translation cache, as required around
// host-side block remapping (e.g. deduplication).
func (c *Ctx) FlushBTLB() { c.s.pl.Hyp.FlushBTLB(c.proc) }

// SnapshotImage captures a copy-on-write snapshot of a host file at
// snapPath on behalf of uid: the snapshot shares every data block with the
// source until one side writes it. If the source is currently exported
// through a NeSC VF, the device mapping is refreshed so guest writes to
// shared extents take the CoW fault path.
func (c *Ctx) SnapshotImage(path, snapPath string, uid uint32) error {
	return c.s.pl.Hyp.SnapshotFile(c.proc, path, snapPath, uid)
}

// DeleteSnapshot removes a snapshot (or any image) file and reclaims its
// space: blocks still shared just drop one reference, private blocks return
// to the free pool. Refuses while the file is exported through a VF — stop
// the VM first.
func (c *Ctx) DeleteSnapshot(path string, uid uint32) error {
	return c.s.pl.Hyp.DeleteSnapshot(c.proc, path, uid)
}

// SharedBlocks reports how many host-filesystem data blocks are currently
// shared between snapshot/clone images (blocks with extra references).
func (c *Ctx) SharedBlocks() int64 { return c.s.pl.Hyp.HostFS.SharedBlocks() }

// MigrateImage relocates the physical blocks behind a VM's disk image (a
// stand-in for host-side deduplication or defragmentation), rebuilds the
// device extent tree, and flushes the BTLB — the full §V-B flow. The VM
// keeps running; its next accesses translate through the new mapping.
func (c *Ctx) MigrateImage(vm *VM) error {
	if vm.vm.VFIdx < 0 {
		return c.s.pl.Hyp.HostFS.Migrate(c.proc, "") // will fail with not-exist
	}
	return c.s.pl.Hyp.MigrateVFFile(c.proc, vm.vm.VFIdx, true)
}
