package nesc

import (
	"fmt"
	"testing"
	"time"
)

// Crash-recovery harness: run a journaling workload, cut power at a seeded
// virtual time (Simulation.CrashAt discards every piece of volatile state —
// rings, page structures, in-flight requests), tear a random tail of
// acknowledged-but-unpersisted block writes off the surviving store, then
// restart a fresh platform around it. Every crash point must remount cleanly
// (journal replay), pass fsck, pass whole-device guard verification, and
// scrub clean.

// crashPoints is the seeded crash-schedule size the harness sweeps.
const crashPoints = 64

// crashMix advances a splitmix64 state for the harness's own decisions.
func crashMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func crashConfig() Config {
	cfg := DefaultConfig()
	cfg.MediumMB = 8
	cfg.UseIOMMU = true
	return cfg
}

// crashWorkload generates mixed journal and data traffic forever — VF
// stripe writes over a sparse image (each first touch lazily allocates,
// committing a journal transaction) plus host-file appends — until the power
// cut kills it mid-flight.
func crashWorkload(ctx *Ctx) error {
	const blockSize = 1024
	const stripe = 8 * blockSize
	if err := ctx.CreateImage("/t.img", 100, 1<<20, true); err != nil {
		return err
	}
	vm, err := ctx.StartVM("t", BackendNeSC, "/t.img", 100)
	if err != nil {
		return err
	}
	buf := make([]byte, stripe)
	for round := 0; ; round++ {
		stripePattern(buf, 1, round)
		off := int64(round%32) * stripe
		if err := vm.WriteAt(ctx, buf, off); err != nil {
			return err
		}
		if round%4 == 0 {
			if err := ctx.WriteHostFile(fmt.Sprintf("/log%d", round%3), buf[:blockSize], int64(round)*blockSize); err != nil {
				return err
			}
		}
	}
}

// crashOnce cuts power at tCrash, drops a seeded tail of persisted writes,
// and verifies the recovery contract end to end. It returns the write-log
// length at the crash (for the determinism check).
func crashOnce(t *testing.T, tCrash time.Duration, seed uint64) int {
	t.Helper()
	s := New(crashConfig())
	crash := s.CrashAt(tCrash, crashWorkload)
	logLen := crash.WriteLogLen()
	if logLen == 0 {
		t.Fatalf("crash at %v: no writes reached the medium; crash point too early", tCrash)
	}

	// Tear off a seeded tail: up to 32 of the newest acknowledged block
	// writes never made it out of the medium's volatile cache. (Bounded so
	// the long-persisted format/boot writes stay put, as they would.)
	maxDrop := 32
	if logLen < maxDrop {
		maxDrop = logLen
	}
	drop := int(crashMix(seed) % uint64(maxDrop+1))
	if got := crash.DropTail(drop); got != drop {
		t.Fatalf("DropTail(%d) undid %d writes", drop, got)
	}
	if bad := crash.VerifyGuards(); len(bad) != 0 {
		t.Fatalf("crash at %v drop %d: %d guard mismatches on the torn store (first at lba %d)",
			tCrash, drop, len(bad), bad[0])
	}

	// Recovery: fresh platform around the wreckage. Run remounts the host
	// filesystem, replaying the journal.
	s2 := crash.Restart()
	err := s2.Run(func(ctx *Ctx) error {
		if err := ctx.CheckHostFS(); err != nil {
			return fmt.Errorf("fsck after remount: %w", err)
		}
		if rep := ctx.Scrub(); rep.Errors != 0 {
			return fmt.Errorf("post-recovery scrub: %d of %d verify requests failed", rep.Errors, rep.Requests)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("crash at %v drop %d: recovery failed: %v", tCrash, drop, err)
	}
	if bad := s2.VerifyGuards(); len(bad) != 0 {
		t.Fatalf("crash at %v drop %d: %d guard mismatches after recovery", tCrash, drop, len(bad))
	}
	return logLen
}

// TestCrashRecoveryHarness sweeps crashPoints seeded power-cut instants
// spread across the workload's life.
func TestCrashRecoveryHarness(t *testing.T) {
	points := crashPoints
	if testing.Short() {
		points = 8
	}
	// Crash instants span from just after boot+first-writes deep into the
	// steady-state workload, stepping at a prime-ish stride so they land on
	// unrelated phases of the journal cycle.
	base := 3 * time.Millisecond
	step := 731 * time.Microsecond
	for i := 0; i < points; i++ {
		i := i
		t.Run(fmt.Sprintf("point%02d", i), func(t *testing.T) {
			crashOnce(t, base+time.Duration(i)*step, uint64(i)*0x9e3779b9+7)
		})
	}
}

// TestCrashDeterminism crashes the same workload at the same instant twice:
// the surviving write logs must agree exactly.
func TestCrashDeterminism(t *testing.T) {
	const at = 7 * time.Millisecond
	a := crashOnce(t, at, 1)
	b := crashOnce(t, at, 1)
	if a != b {
		t.Fatalf("same-instant crashes persisted different write counts: %d vs %d", a, b)
	}
}
