module nesc

go 1.22
