package nesc

// Telemetry acceptance tests: the Prometheus exporter must emit parseable
// text exposition format, the Chrome trace exporter must emit loadable
// trace-event JSON, and — the cardinal rule — instrumentation must be
// virtual-time-neutral: enabling it cannot move a single event, so every
// counter and the final clock match an uninstrumented run exactly. The
// golden test at the bottom extends that guarantee to the full experiment
// suite: an instrumentation-off run reproduces results/all_experiments.txt
// byte for byte.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"nesc/internal/bench"
)

// telemetryWorkload drives a deterministic mixed workload: a dense image
// (BTLB hits), a sparse image (hypervisor misses via lazy allocation), and a
// read-back pass (warmed-cache hits).
func telemetryWorkload(sim *Simulation) error {
	return sim.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/dense.img", 7, 4<<20, false); err != nil {
			return err
		}
		if err := ctx.CreateImage("/sparse.img", 7, 4<<20, true); err != nil {
			return err
		}
		dense, err := ctx.StartVM("dense", BackendNeSC, "/dense.img", 7)
		if err != nil {
			return err
		}
		sparse, err := ctx.StartVM("sparse", BackendNeSC, "/sparse.img", 7)
		if err != nil {
			return err
		}
		buf := bytes.Repeat([]byte{0x5A}, 64<<10)
		for _, vm := range []*VM{dense, sparse} {
			for off := int64(0); off < 512<<10; off += int64(len(buf)) {
				if err := vm.WriteAt(ctx, buf, off); err != nil {
					return err
				}
			}
			got := make([]byte, len(buf))
			if err := vm.ReadAt(ctx, got, 0); err != nil {
				return err
			}
			if !bytes.Equal(got, buf) {
				return fmt.Errorf("round-trip mismatch")
			}
		}
		return nil
	})
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (\S+)$`)
)

// parsePrometheus validates Prometheus text exposition format line by line
// and returns the set of sample metric names (with _bucket/_sum/_count
// suffixes intact) plus the set of TYPE-declared families.
func parsePrometheus(t *testing.T, text string) (samples map[string]int, families map[string]string) {
	t.Helper()
	samples = make(map[string]int)
	families = make(map[string]string)
	typed := ""
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := promHelpRe.FindStringSubmatch(line); m != nil {
			continue
		} else if m := promTypeRe.FindStringSubmatch(line); m != nil {
			families[m[1]] = m[2]
			typed = m[1]
			continue
		} else if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: malformed comment %q", i+1, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		name := m[1]
		if _, err := strconv.ParseFloat(m[len(m)-1], 64); err != nil && m[len(m)-1] != "+Inf" {
			t.Fatalf("line %d: bad value in %q: %v", i+1, line, err)
		}
		// Every sample must follow a TYPE declaration for its family.
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if typed != base && typed != name {
			t.Fatalf("line %d: sample %q outside its TYPE block (last TYPE %q)", i+1, name, typed)
		}
		samples[name]++
	}
	return samples, families
}

func TestTelemetryExports(t *testing.T) {
	sim := New(Config{MediumMB: 32, Metrics: true, TraceSpans: 2048, TraceEvents: 64})
	if err := telemetryWorkload(sim); err != nil {
		t.Fatal(err)
	}

	// --- Prometheus text format ---
	var prom bytes.Buffer
	if err := sim.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	samples, families := parsePrometheus(t, prom.String())
	if len(samples) == 0 {
		t.Fatal("no samples exported")
	}
	for fam, kind := range map[string]string{
		"nesc_request_ns":                 "histogram",
		"nesc_pipeline_fetch_ns":          "histogram",
		"nesc_pipeline_translate_hit_ns":  "histogram",
		"nesc_pipeline_translate_miss_ns": "histogram",
		"nesc_pipeline_transfer_ns":       "histogram",
		"nesc_device_btlb_hit_rate":       "gauge",
		"nesc_device_reqs_done_total":     "gauge",
		"nesc_hyp_miss_interrupts_total":  "gauge",
		"nesc_fn_inflight":                "gauge",
		"nesc_driver_queue_depth":         "gauge",
		"nesc_medium_write_bytes_total":   "gauge",
		"nesc_requests_total":             "counter",
	} {
		if got, ok := families[fam]; !ok {
			t.Errorf("family %s missing from export", fam)
		} else if got != kind {
			t.Errorf("family %s has type %s, want %s", fam, got, kind)
		}
	}
	// Histograms decompose into _bucket/_sum/_count sample lines.
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if samples["nesc_request_ns"+suffix] == 0 {
			t.Errorf("nesc_request_ns%s samples missing", suffix)
		}
	}
	// The sparse image forces hypervisor-serviced misses; the dense read-back
	// rides the BTLB — both translate outcomes must carry samples.
	for _, fam := range []string{"nesc_pipeline_translate_hit_ns_count", "nesc_pipeline_translate_miss_ns_count"} {
		if samples[fam] == 0 {
			t.Errorf("%s: no samples — hit/miss separation lost", fam)
		}
	}

	// --- JSON snapshot ---
	var snap bytes.Buffer
	if err := sim.WriteMetricsJSON(&snap); err != nil {
		t.Fatal(err)
	}
	var anyJSON any
	if err := json.Unmarshal(snap.Bytes(), &anyJSON); err != nil {
		t.Fatalf("metrics JSON snapshot invalid: %v", err)
	}

	// --- Chrome trace-event JSON ---
	if sim.SpanCount() == 0 {
		t.Fatal("no spans recorded")
	}
	var tj bytes.Buffer
	if err := sim.WriteTraceJSON(&tj); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tj.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace JSON has no events")
	}
	var meta, slices, hits, misses int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("slice %q has no/negative duration", e.Name)
			}
			if strings.Contains(e.Name, "(hit)") {
				hits++
			}
			if strings.Contains(e.Name, "(miss)") {
				misses++
			}
		default:
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
	}
	if meta == 0 || slices == 0 {
		t.Fatalf("trace JSON missing track metadata (%d) or slices (%d)", meta, slices)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("translate slices lack hit (%d) / miss (%d) tags", hits, misses)
	}

	// --- flight recorder: clean run captures nothing ---
	if n := sim.FlightRecords(); n != 0 {
		t.Errorf("clean run captured %d flight records:\n%s", n, sim.FlightDump())
	}
	if !strings.Contains(sim.FlightDump(), "no records") {
		t.Errorf("FlightDump on a clean run: %q", sim.FlightDump())
	}
}

// TestInstrumentationNeutrality runs the same workload bare and fully
// instrumented; every counter — above all the virtual clock — must match.
func TestInstrumentationNeutrality(t *testing.T) {
	bare := New(Config{MediumMB: 32})
	if err := telemetryWorkload(bare); err != nil {
		t.Fatal(err)
	}
	instr := New(Config{MediumMB: 32, Metrics: true, TraceSpans: 4096, TraceEvents: 128})
	if err := telemetryWorkload(instr); err != nil {
		t.Fatal(err)
	}
	if a, b := bare.Stats(), instr.Stats(); a != b {
		t.Fatalf("instrumentation perturbed the simulation:\nbare:  %+v\ninstr: %+v", a, b)
	}
}

// TestGoldenExperimentOutputs is the tier-1 guard: an instrumentation-off run
// of the full experiment suite must reproduce results/all_experiments.txt
// byte for byte. Regenerate with:
//
//	go run ./cmd/nescbench -exp all > results/all_experiments.txt
func TestGoldenExperimentOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite (~1 min) skipped in -short mode")
	}
	golden, err := os.ReadFile("results/all_experiments.txt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := bench.DefaultConfig()
	var got strings.Builder
	for _, e := range bench.All() {
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("experiment %s: %v", e.Name, err)
		}
		for _, tb := range tables {
			got.WriteString(tb.String())
			got.WriteByte('\n')
		}
	}
	if got.String() == string(golden) {
		return
	}
	gotLines := strings.Split(got.String(), "\n")
	wantLines := strings.Split(string(golden), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("experiment output drifted from results/all_experiments.txt at line %d:\n got: %q\nwant: %q\n(regenerate the golden file only for intentional output changes)", i+1, g, w)
		}
	}
	t.Fatal("experiment output differs from results/all_experiments.txt (length only?)")
}
