package nesc

import (
	"fmt"
	"time"

	"nesc/internal/fabric"
	"nesc/internal/fault"
	"nesc/internal/hypervisor"
	"nesc/internal/sim"
)

// Multi-device fabric: a Simulation configured with Config.Devices > 1
// carries a fleet of NeSC controllers on one PCIe fabric, all managed by
// the single hypervisor. Mirrored VMs (StartMirroredVM) get one VF per
// device behind a synchronous mirror — a write is acknowledged only when
// every live replica has it, reads fail over between replicas, a fenced
// device's writes are dirty-tracked and resilvered when it returns, and a
// whole mirror leg can be live-migrated between devices (VM.Migrate).

// The fabric injection sites (armed like any other FaultSite; device kills
// latch until ReviveDevice, partitions heal after PartitionDuration).
const (
	FaultDeviceKill      = fault.DeviceKill
	FaultDevicePartition = fault.DevicePartition
)

// MirrorConfig tunes a mirrored VM's replication behavior. The zero value
// takes the fabric defaults.
type MirrorConfig struct {
	// SuspectThreshold / FailThreshold are the consecutive-error counts
	// that move a replica Healthy→Suspect and Suspect→Failed.
	SuspectThreshold int
	FailThreshold    int
	// RecoverThreshold is the consecutive-success count that clears a
	// Suspect replica.
	RecoverThreshold int
	// RegionBlocks is the dirty-tracking granularity for resilvering.
	RegionBlocks int
	// ResilverInterval paces background resilver copies.
	ResilverInterval time.Duration

	// The gray-failure mitigation stack (DESIGN.md §14); every field zero
	// keeps the classic fail-stop-only behavior and schedule.

	// HedgePercentile (0-100), when positive, arms hedged reads: a read the
	// primary leg has not answered within that percentile of recent
	// delivered read latency launches a speculative second read on the
	// next-best leg; the first success wins. HedgeMinDelay floors the
	// adaptive deadline so a cold window cannot make every read hedge.
	HedgePercentile float64
	HedgeMinDelay   time.Duration
	// SlowFactor, when > 1, arms the per-leg fail-slow detector: a leg
	// whose windowed read p99 exceeds SlowFactor x its learned healthy
	// baseline is quarantined out of read steering (writes continue) for
	// QuarantineDuration, then rejoins with a reset window. SlowWindow,
	// SlowBaseline, and SlowMinSamples tune the detector (0 = defaults).
	SlowFactor         float64
	SlowWindow         int
	SlowBaseline       int
	SlowMinSamples     int
	QuarantineDuration time.Duration
	// ProbeEvery, when positive, sends every Nth read to the worst-EWMA
	// eligible leg so a recovered leg's stale latency estimate refreshes
	// and it can win steering back.
	ProbeEvery int
}

// ReplicaStatus is one mirror leg's externally visible health.
type ReplicaStatus = fabric.ReplicaStatus

// MigrationReport summarizes one live VF migration.
type MigrationReport = hypervisor.MigrationReport

// NumDevices reports the fleet size.
func (s *Simulation) NumDevices() int { return s.pl.Hyp.NumDevices() }

// CreateImageOn is CreateImage targeting a specific fleet device's host
// filesystem. A mirrored VM needs its image present on every device it
// spans.
func (c *Ctx) CreateImageOn(dev int, path string, uid uint32, sizeBytes int64, sparse bool) error {
	d := c.s.pl.Hyp.Device(dev)
	if d == nil {
		return fmt.Errorf("nesc: no device %d", dev)
	}
	bs := uint64(c.s.pl.Cfg.Core.BlockSize)
	blocks := (uint64(sizeBytes) + bs - 1) / bs
	return d.MkImage(c.proc, path, uid, blocks, sparse)
}

// StartMirroredVM launches a guest whose virtual disk is synchronously
// mirrored across one NeSC VF on each listed device. The image at diskPath
// must already exist on every listed device (CreateImageOn) with identical
// size. The guest sees a single block device and survives the loss of all
// but one replica.
func (c *Ctx) StartMirroredVM(name, diskPath string, uid uint32, devices []int, mc MirrorConfig) (*VM, error) {
	fcfg := fabric.Config{
		SuspectThreshold:   mc.SuspectThreshold,
		FailThreshold:      mc.FailThreshold,
		RecoverThreshold:   mc.RecoverThreshold,
		RegionBlocks:       uint64(mc.RegionBlocks),
		ResilverInterval:   sim.Time(mc.ResilverInterval),
		HedgePercentile:    mc.HedgePercentile,
		HedgeMinDelay:      sim.Time(mc.HedgeMinDelay),
		SlowFactor:         mc.SlowFactor,
		SlowWindow:         mc.SlowWindow,
		SlowBaseline:       mc.SlowBaseline,
		SlowMinSamples:     mc.SlowMinSamples,
		QuarantineDuration: sim.Time(mc.QuarantineDuration),
		ProbeEvery:         mc.ProbeEvery,
	}
	vm, err := c.s.pl.Hyp.NewMirroredVM(c.proc, name, hypervisor.VMConfig{
		Backend:  hypervisor.BackendDirect,
		DiskPath: diskPath,
		UID:      uid,
		Guest:    c.s.pl.Cfg.Guest,
	}, devices, fcfg)
	if err != nil {
		return nil, err
	}
	return &VM{name: name, vm: vm, s: c.s}, nil
}

// Mirrored reports whether the VM runs on a mirror client.
func (vm *VM) Mirrored() bool { return vm.vm.Client != nil }

// FabricStatus snapshots each mirror leg's health (device index, FSM
// state, dirty backlog) — the degraded-mode view an operator would watch.
func (vm *VM) FabricStatus() []ReplicaStatus {
	if vm.vm.Client == nil {
		return nil
	}
	return vm.vm.Client.Status()
}

// Migrate live-migrates mirror leg slot to fleet device dst: bulk-copy
// under a CoW snapshot, iterative dirty-region pre-copy while the guest
// keeps running, then a bounded stop-and-copy pause in which the leg is
// atomically retargeted to a fresh VF on the destination.
func (vm *VM) Migrate(c *Ctx, slot, dst int) (MigrationReport, error) {
	return c.s.pl.Hyp.MigrateVM(c.proc, vm.vm, slot, dst)
}

// KillDevice latches fleet device dev dead — every medium access fails
// until ReviveDevice, exactly as a DeviceKill fault. Requires a fault plan
// (any plan, even one with no sites armed, supplies the injector).
func (c *Ctx) KillDevice(dev int) error {
	if c.s.pl.Inj == nil {
		return fmt.Errorf("nesc: KillDevice requires Config.Fault (an empty plan suffices)")
	}
	c.s.pl.Inj.KillDevice(dev)
	return nil
}

// ReviveDevice clears a device's kill latch and tells every mirror client
// the device is back; fenced replicas enter Rebuilding and the resilver
// copies their dirty backlog from clean peers.
func (c *Ctx) ReviveDevice(dev int) error {
	if c.s.pl.Inj == nil {
		return fmt.Errorf("nesc: ReviveDevice requires Config.Fault")
	}
	c.s.pl.Inj.ReviveDevice(dev)
	c.s.pl.Hyp.ReviveDevice(dev)
	return nil
}

// FabricStats aggregates mirror-fabric counters across every mirrored VM.
type FabricStats struct {
	// Clients counts distinct mirror clients (mirrored VMs).
	Clients int
	// MirroredWrites were acknowledged by every live replica;
	// DegradedWrites by a strict subset; WriteFailures by none.
	MirroredWrites, DegradedWrites, WriteFailures int64
	// ReadFallbacks are reads retried on a peer after detected corruption;
	// ReadRetries after other errors.
	ReadFallbacks, ReadRetries int64
	// Suspects / Failovers / Recoveries / Revives count replica FSM
	// transitions.
	Suspects, Failovers, Recoveries, Revives int64
	// Resilver progress: regions and blocks copied, and full redundancy
	// restorations completed.
	ResilverRegions, ResilverBlocks, ResilverRestores int64
	// Migrations counts completed live migrations; LastMigrationPause is
	// the most recent one's stop-and-copy window.
	Migrations int64
	// LastFailoverLatency is the largest first-error→fenced latency
	// observed; LastMigrationPause the last migration's guest-visible gap.
	LastFailoverLatency, LastMigrationPause time.Duration
}

// FabricStats snapshots the mirror-fabric counters.
func (s *Simulation) FabricStats() FabricStats {
	fs := s.pl.Hyp.FabricStatsNow()
	return FabricStats{
		Clients:             fs.Clients,
		MirroredWrites:      fs.MirroredWrites,
		DegradedWrites:      fs.DegradedWrites,
		WriteFailures:       fs.WriteFailures,
		ReadFallbacks:       fs.ReadFallbacks,
		ReadRetries:         fs.ReadRetries,
		Suspects:            fs.Suspects,
		Failovers:           fs.Failovers,
		Recoveries:          fs.Recoveries,
		Revives:             fs.Revives,
		ResilverRegions:     fs.ResilverRegions,
		ResilverBlocks:      fs.ResilverBlocks,
		ResilverRestores:    fs.ResilverRestores,
		Migrations:          s.pl.Hyp.Migrations,
		LastFailoverLatency: time.Duration(fs.LastFailoverLatency),
		LastMigrationPause:  time.Duration(s.pl.Hyp.LastMigration.Pause),
	}
}
