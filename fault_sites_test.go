package nesc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"nesc/internal/fault"
	"nesc/internal/sim"
)

// Fault-site coverage: every injection site the fault package defines must
// be reachable from a chaos plan — consulted by real operations and
// actually fired by an armed schedule. When a new Site is added to the
// enum, this table fails until some scenario below exercises it, so a site
// can never silently exist without a workload path that reaches it.

// classicSitePlan arms the nine single-device sites (loud faults, delayed
// interrupts, and the silent-corruption half) aggressively enough that a
// short seeded workload makes each one fire.
func classicSitePlan(seed uint64) *FaultPlan {
	plan := &FaultPlan{Seed: seed}
	plan.Sites[FaultMediumRead] = FaultSiteParams{Prob: 0.05}
	plan.Sites[FaultMediumWrite] = FaultSiteParams{Prob: 0.02}
	plan.Sites[FaultDMARead] = FaultSiteParams{Prob: 0.02}
	plan.Sites[FaultDMAWrite] = FaultSiteParams{Prob: 0.02}
	plan.Sites[FaultMSI] = FaultSiteParams{Prob: 0.05, DelayProb: 0.1, Delay: 30 * 1000}
	plan.Sites[FaultMissHandler] = FaultSiteParams{Prob: 0.2}
	plan.Sites[FaultMediumCorruptRead] = FaultSiteParams{Prob: 0.03}
	plan.Sites[FaultMediumCorruptWrite] = FaultSiteParams{Prob: 0.01}
	plan.Sites[FaultDMACorrupt] = FaultSiteParams{Prob: 0.05}
	return plan
}

// runClassicSiteScenario drives the single-device sites: two sparse
// file-backed tenants on one controller, direct DMA (no trampoline masking
// DMA faults), lazy allocation (MissHandler), and the scrub-repair read
// path recovering from every loud or silent hit.
func runClassicSiteScenario(t *testing.T) *fault.Injector {
	t.Helper()
	const blockSize = 1024
	const rounds, stripeBlocks = 8, 8
	cfg := DefaultConfig()
	cfg.MediumMB = 16
	cfg.UseIOMMU = true
	cfg.Fault = classicSitePlan(0x517E5)
	cfg.DriverTimeout = 3 * time.Millisecond
	cfg.DriverRetryMax = 8
	s := New(cfg)

	stripe := int64(stripeBlocks * blockSize)
	diskBytes := int64(rounds*stripeBlocks*2) * blockSize
	err := s.Run(func(ctx *Ctx) error {
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("/site%d.img", i)
			if err := ctx.CreateImage(path, uint32(100+i), diskBytes, true); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("site%d", i), BackendNeSC, path, uint32(100+i))
			if err != nil {
				return err
			}
			want := make([]byte, stripe)
			got := make([]byte, stripe)
			for round := 0; round < rounds; round++ {
				stripePattern(want, i, round)
				if err := writeStripe(ctx, vm, want, int64(round)*stripe); err != nil {
					return err
				}
				vr := round / 2
				stripePattern(want, i, vr)
				if err := readVerified(ctx, vm, want, got, int64(vr)*stripe); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("classic site scenario: %v", err)
	}
	return s.pl.Inj
}

// runDeviceSiteScenario drives the device-scoped sites: a 3-way mirror
// whose plan one-shot-kills one device and later partitions another while
// the guest keeps writing. Every acknowledged write must still read back
// bit-exactly after the fleet is revived and resilvered.
func runDeviceSiteScenario(t *testing.T) *fault.Injector {
	t.Helper()
	plan := &FaultPlan{Seed: 0xFAB12}
	// The ordinals land mid-workload: image creation and mirror bring-up
	// consume ~4100 device draws, the 100-write loop the next ~1200.
	plan.Sites[FaultDeviceKill] = FaultSiteParams{OneShot: []int64{4400}}
	plan.Sites[FaultDevicePartition] = FaultSiteParams{OneShot: []int64{4900}}
	plan.PartitionDuration = 300 * 1000 // 300µs link flap, heals on its own

	cfg := DefaultConfig()
	cfg.Devices = 3
	cfg.MediumMB = 16
	cfg.Fault = plan
	cfg.DriverTimeout = 2 * time.Millisecond
	cfg.DriverRetryMax = 4
	s := New(cfg)

	const stripe = 4096
	final := make(map[int64]int64)
	err := s.Run(func(ctx *Ctx) error {
		for d := 0; d < 3; d++ {
			if err := ctx.CreateImageOn(d, "/site.img", 7, 1<<20, false); err != nil {
				return err
			}
		}
		vm, err := ctx.StartMirroredVM("site", "/site.img", 7, []int{0, 1, 2}, MirrorConfig{
			SuspectThreshold: 2, FailThreshold: 3, RecoverThreshold: 3,
			RegionBlocks: 32, ResilverInterval: 20 * time.Microsecond,
		})
		if err != nil {
			return err
		}
		buf := make([]byte, stripe)
		for i := 0; i < 100; i++ {
			off := int64(i%32) * stripe
			seed := int64(i) + 9000
			fillPattern(buf, seed)
			if err := vm.WriteAt(ctx, buf, off); err != nil {
				return fmt.Errorf("write %d: %w", i, err)
			}
			final[off] = seed
		}
		// Revive whatever the plan latched and wait for full redundancy.
		for d := 0; d < 3; d++ {
			if err := ctx.ReviveDevice(d); err != nil {
				return err
			}
		}
		healthy := func() bool {
			for _, rs := range vm.FabricStatus() {
				if rs.State != "healthy" || rs.DirtyRegions != 0 {
					return false
				}
			}
			return true
		}
		for i := 0; i < 400 && !healthy(); i++ {
			ctx.Sleep(100 * time.Microsecond)
		}
		if !healthy() {
			return fmt.Errorf("fleet never resilvered: %+v", vm.FabricStatus())
		}
		got, want := make([]byte, stripe), make([]byte, stripe)
		for slot := 0; slot < 32; slot++ {
			off := int64(slot) * stripe
			seed, ok := final[off]
			if !ok {
				continue
			}
			fillPattern(want, seed)
			if err := vm.ReadAt(ctx, got, off); err != nil {
				return fmt.Errorf("read-back at %d: %w", off, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("acked write at %d lost after device faults", off)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("device site scenario: %v", err)
	}
	return s.pl.Inj
}

// runCASSiteScenario drives the remote-tier sites of the content-addressed
// store: a golden image is sealed (RemoteStore consulted on the PUT's retry
// ladder — Prob 1 fires every attempt, and the idempotent PUT still lands),
// forked twice, and each fork read end to end; the first fork's
// materializations consult (and transiently fault) RemoteFetch, the second
// mostly rides the warmed chunk cache.
func runCASSiteScenario(t *testing.T) *fault.Injector {
	t.Helper()
	plan := &FaultPlan{Seed: 0xCA5E}
	plan.Sites[FaultRemoteFetch] = FaultSiteParams{Prob: 0.2, DelayProb: 0.1, Delay: 20 * 1000}
	plan.Sites[FaultRemoteStore] = FaultSiteParams{Prob: 1}
	const blocks, blockSize = 48, 1024
	cfg := DefaultConfig()
	cfg.MediumMB = 16
	cfg.CAS = true
	cfg.Fault = plan
	cfg.DriverTimeout = 5 * time.Millisecond
	cfg.DriverRetryMax = 8
	s := New(cfg)
	err := s.Run(func(ctx *Ctx) error {
		// Per-block-distinct content: stripePattern repeats with a 256-byte
		// period, which would dedup the whole image to one chunk and leave
		// the remote-fetch site nearly unconsulted. Mixing the block index in
		// keeps all 48 chunks unique so every materialization pays a fetch.
		want := make([]byte, blocks*blockSize)
		for i := range want {
			want[i] = byte(i*7 + i/blockSize*131 + 5)
		}
		if err := ctx.CreateImage("/golden.img", 3, blocks*blockSize, true); err != nil {
			return err
		}
		if err := ctx.WriteHostFile("/golden.img", want, 0); err != nil {
			return err
		}
		if _, err := ctx.SealImage("/golden.img", "golden", 3); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			path := fmt.Sprintf("/fork%d.img", i)
			if err := ctx.ForkImage("golden", path, 3); err != nil {
				return err
			}
			vm, err := ctx.StartVM(fmt.Sprintf("fork%d", i), BackendNeSC, path, 3)
			if err != nil {
				return err
			}
			got := make([]byte, blocks*blockSize)
			if err := vm.ReadAt(ctx, got, 0); err != nil {
				return fmt.Errorf("fork %d read: %w", i, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("fork %d content diverged from the sealed image", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("cas site scenario: %v", err)
	}
	return s.pl.Inj
}

// TestFaultSiteTableCoverage merges the per-site counters from the
// scenarios and asserts, site by site, that each one was consulted and
// fired at least once.
func TestFaultSiteTableCoverage(t *testing.T) {
	var ops, faults [fault.NumSites]int64
	for _, in := range []*fault.Injector{
		runClassicSiteScenario(t),
		runDeviceSiteScenario(t),
		runCASSiteScenario(t),
	} {
		for site := fault.Site(0); site < fault.NumSites; site++ {
			ops[site] += in.Ops(site)
			faults[site] += in.Faults(site)
		}
	}
	for site := fault.Site(0); site < fault.NumSites; site++ {
		if ops[site] == 0 {
			t.Errorf("site %-16s unreachable: no operation ever consulted it", site)
			continue
		}
		if faults[site] == 0 {
			t.Errorf("site %-16s inert: %d ops consulted it but the armed plans never fired", site, ops[site])
			continue
		}
		t.Logf("site %-16s ops=%-6d faults=%d", site, ops[site], faults[site])
	}
}

// runDelayScenario drives one small seeded workload — two sparse-image
// tenants writing and reading verified stripes through the lazy-allocation
// path, then a content-addressed seal + fork read so the remote-tier sites
// are consulted inside the measured window — with the given fault plan, and
// returns the injector (nil plan is allowed) plus the workload's
// virtual-time duration.
func runDelayScenario(t *testing.T, plan *FaultPlan) (*fault.Injector, time.Duration) {
	t.Helper()
	const blockSize = 1024
	const rounds, stripeBlocks = 4, 8
	cfg := DefaultConfig()
	cfg.MediumMB = 16
	cfg.UseIOMMU = true
	cfg.CAS = true
	cfg.Fault = plan
	s := New(cfg)

	stripe := int64(stripeBlocks * blockSize)
	diskBytes := int64(rounds*stripeBlocks) * blockSize
	var elapsed time.Duration
	err := s.Run(func(ctx *Ctx) error {
		if err := ctx.CreateImage("/delay.img", 9, diskBytes, true); err != nil {
			return err
		}
		vm, err := ctx.StartVM("delay", BackendNeSC, "/delay.img", 9)
		if err != nil {
			return err
		}
		want := make([]byte, stripe)
		got := make([]byte, stripe)
		start := ctx.Now()
		for round := 0; round < rounds; round++ {
			stripePattern(want, 0, round)
			if err := writeStripe(ctx, vm, want, int64(round)*stripe); err != nil {
				return err
			}
			if err := readVerified(ctx, vm, want, got, int64(round)*stripe); err != nil {
				return err
			}
		}
		// Content-addressed phase: seal the image (RemoteStore on the batched
		// PUT), fork it, and read the fork end to end (RemoteFetch on every
		// chunk materialization).
		if _, err := ctx.SealImage("/delay.img", "delay-golden", 9); err != nil {
			return err
		}
		if err := ctx.ForkImage("delay-golden", "/delay-fork.img", 9); err != nil {
			return err
		}
		fvm, err := ctx.StartVM("delay-fork", BackendNeSC, "/delay-fork.img", 9)
		if err != nil {
			return err
		}
		for round := 0; round < rounds; round++ {
			stripePattern(want, 0, round)
			if err := readVerified(ctx, fvm, want, got, int64(round)*stripe); err != nil {
				return err
			}
		}
		elapsed = ctx.Now() - start
		return nil
	})
	if err != nil {
		t.Fatalf("delay scenario: %v", err)
	}
	return s.pl.Inj, elapsed
}

// TestFaultSiteDelayTable classifies every fault site by whether it honors
// Decision.Delay, and proves it for the ones that do: arming DelayProb=1 on
// exactly that site must both tick its Delays counter and stretch the same
// seeded workload's virtual time past the fault-free baseline. Corruption
// sites flip bits instead of stalling and the device-scoped sites model
// availability, not latency — they are classified delay-less, and a new
// enum entry fails the test until it is classified here.
func TestFaultSiteDelayTable(t *testing.T) {
	delayMeaningful := map[fault.Site]bool{
		fault.MediumRead:         true,
		fault.MediumWrite:        true,
		fault.DMARead:            true,
		fault.DMAWrite:           true,
		fault.MSI:                true,
		fault.MissHandler:        true,
		fault.MediumCorruptRead:  false,
		fault.MediumCorruptWrite: false,
		fault.DMACorrupt:         false,
		fault.DeviceKill:         false,
		fault.DevicePartition:    false,
		fault.RemoteFetch:        true,
		fault.RemoteStore:        true,
	}
	for site := fault.Site(0); site < fault.NumSites; site++ {
		if _, ok := delayMeaningful[site]; !ok {
			t.Fatalf("site %s not classified: add it to the delay table", site)
		}
	}
	_, baseline := runDelayScenario(t, nil)
	if baseline <= 0 {
		t.Fatalf("baseline workload took no virtual time")
	}
	const extra = 100 * time.Microsecond
	for site, meaningful := range delayMeaningful {
		if !meaningful {
			continue
		}
		site := site
		t.Run(site.String(), func(t *testing.T) {
			plan := &FaultPlan{Seed: 0xDE1A7}
			plan.Sites[site] = FaultSiteParams{DelayProb: 1, Delay: sim.Time(extra)}
			in, elapsed := runDelayScenario(t, plan)
			delays := in.Delays(site)
			if delays == 0 {
				t.Fatalf("site %s: DelayProb=1 plan never injected a delay", site)
			}
			if elapsed <= baseline {
				t.Fatalf("site %s: %d injected delays did not stretch the workload (baseline %v, delayed %v)",
					site, delays, baseline, elapsed)
			}
			t.Logf("site %-14s delays=%-5d baseline=%v delayed=%v", site, delays, baseline, elapsed)
		})
	}
}
